// Executor: the second stage of the query pipeline. It consumes the
// planner's tiers in increasing cost order — evidence-decided tuples for
// free, single-missing tuples from the shared CPD cache, bound-tier
// tuples from their dissociation intervals, and only the remainder
// through full block derivation — while keeping every answer
// bit-identical to deriving the whole relation and evaluating the stream
// naively:
//
//   - Thresholded count decides a tuple in when its interval's lower
//     bound reaches MinProb and out when the upper bound stays below —
//     both imply the oracle's comparison — and derives only the tuples
//     whose interval straddles the threshold.
//   - Thresholded exists first folds a derivation-free lower bound over
//     the scan (exact probabilities for cheap tiers, interval lower
//     bounds for multi-missing tuples); crossing the threshold there
//     answers yes without sampling anything, and only a non-crossing
//     falls back to the exact sequential scan.
//   - TopK resolves the cheap tiers first, then visits the remaining
//     candidates in decreasing upper-bound order: once rank k is held at
//     a probability no candidate's upper bound can beat, everything left
//     is skipped. Every satisfying completion of a skipped tuple has
//     probability at most the tuple's upper bound, which the insertion
//     order (probability desc, input index asc, block order) would
//     reject anyway, so the cut is exact.
//   - Expected count, unthresholded exists, and groupby need exact
//     masses for every open tuple; they scan fully with a prefetched
//     worklist, as before.
package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"repro/internal/derive"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// ProgressFunc observes an evaluation in flight: the executor calls it
// after each resolved uncertain tuple of a TopK or GroupBy evaluation
// (other operators fold scalars and report nothing incremental). The
// *Result is the live, partially filled result — read it synchronously,
// do not retain it. Returning an error aborts the evaluation with that
// error.
type ProgressFunc func(*Result) error

// Eval evaluates q over rel through eng with the engine's default pool
// sizes. See EvalPools.
func Eval(ctx context.Context, eng *derive.Engine, rel *relation.Relation, q *Query) (*Result, error) {
	return EvalPools(ctx, eng, rel, q, derive.Pools{})
}

// EvalPools evaluates the compiled query over rel, extensionally, on top
// of the engine's shared caches, through the plan/executor pipeline:
// a planner orders predicate evaluation by estimated selectivity and
// classifies every tuple into a resolution tier (attaching sound
// dissociation bound intervals to multi-missing tuples — see
// derive.Engine.BoundCPD), and the executor consumes the tiers in
// increasing cost order. Every answer is bit-identical to deriving the
// full probabilistic database through the same engine and evaluating
// naively over the stream, for every worker count — yet selective
// queries derive only the tuples whose bounds leave the answer open.
//
// The bit-identity contract holds on chains-mode engines (GibbsWorkers >
// 0), whose multi-missing estimates are content-seeded per tuple. On a
// DAG-mode engine the evaluator resolves each multi-missing tuple as a
// single-tuple DAG batch, while full derivation samples the workload
// holistically — the DAG estimator is workload-dependent by
// construction, the same caveat derivation itself documents — so
// DAG-mode answers match the oracle only for tuples already in the
// joint cache (and dissociation bounds stay disabled there).
//
// Pool sizes affect prefetch scheduling only, never the answer.
// Canceling ctx aborts evaluation with ctx.Err(). On success the
// evaluation's counters are folded into the engine's stats (EngineStats'
// Query* fields) and the compiled plan summary is attached to
// Result.Plan.
func EvalPools(ctx context.Context, eng *derive.Engine, rel *relation.Relation, q *Query, pools derive.Pools) (*Result, error) {
	return EvalPoolsProgress(ctx, eng, rel, q, pools, nil)
}

// EvalPoolsProgress is EvalPools with a progress observer for streaming
// consumers (nil disables it); see ProgressFunc.
func EvalPoolsProgress(ctx context.Context, eng *derive.Engine, rel *relation.Relation, q *Query,
	pools derive.Pools, progress ProgressFunc) (*Result, error) {
	return evalOverrides(ctx, eng, rel, nil, q, pools, progress)
}

// EvalSnapshot evaluates q over a live dataset snapshot
// (derive.Dataset.Snapshot): the snapshot's effective tuples are scanned
// like any relation, except that tuples with applied evidence resolve
// from their conditioned posterior blocks — exactly, for free, and
// without touching the engine's estimators. The answer is bit-identical
// to a fresh engine deriving the conditioned database and evaluating
// naively (the conditioned blocks are deterministic replays, and their
// satisfying mass folds in block order like every other tier's).
func EvalSnapshot(ctx context.Context, eng *derive.Engine, snap *derive.DatasetSnapshot, q *Query,
	pools derive.Pools, progress ProgressFunc) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("query: nil snapshot")
	}
	return evalOverrides(ctx, eng, snap.Rel, snap.Overrides, q, pools, progress)
}

func evalOverrides(ctx context.Context, eng *derive.Engine, rel *relation.Relation, overrides map[int]*pdb.Block,
	q *Query, pools derive.Pools, progress ProgressFunc) (*Result, error) {
	wallStart := time.Now()
	if err := validate(eng, rel, q); err != nil {
		return nil, err
	}
	pl, err := q.newPlan(ctx, eng, rel, overrides)
	if err != nil {
		return nil, err
	}
	planDur := time.Since(wallStart)
	planSeconds.Observe(planDur)
	ex := newExecutor(ctx, q, eng, rel, pl, pools, progress)
	ex.tm.start = wallStart
	ex.tm.planNS = planDur.Nanoseconds()
	res, err := ex.dispatch(ctx)
	if err != nil {
		pl.release()
		return nil, err
	}
	res = ex.finish(res, false)
	pl.release()
	return res, nil
}

// dispatch runs the operator's evaluator over the compiled plan.
func (ex *executor) dispatch(ctx context.Context) (*Result, error) {
	switch ex.q.op {
	case Count:
		return ex.evalCount(ctx)
	case Exists:
		return ex.evalExists(ctx)
	case TopK:
		return ex.evalTopK(ctx)
	case GroupBy:
		return ex.evalGroupBy(ctx)
	default:
		return nil, fmt.Errorf("query: unknown operation %v", ex.q.op)
	}
}

// finish attaches the plan summary, closes the counter partition, and
// folds the evaluation into the engine's stats. When the evaluation
// requested timing, the measured per-tier durations land on
// Plan.Timing and mirror into the request's trace.
func (ex *executor) finish(res *Result, dissociated bool) *Result {
	wall := time.Since(ex.tm.start)
	execSeconds.Observe(wall)
	if t := ex.tm.build(wall); t != nil {
		ex.plan.info.Timing = t
		t.trace(ex.tr)
	}
	res.Plan = ex.plan.info
	res.Dissociated = dissociated
	res.Degraded = ex.degraded
	res.DegradedTuples = ex.degTuples
	c := &res.Counters
	c.Scanned = int64(len(ex.rel.Tuples))
	c.Pruned = c.Scanned - c.Bounded - c.Derived
	var replans int64
	if a := ex.plan.info.Adaptive; a != nil {
		replans = int64(a.Replans)
	}
	ex.eng.RecordQuery(derive.QueryRecord{
		Tuples: c.Scanned, Pruned: c.Pruned, Bounded: c.Bounded, Derived: c.Derived,
		BoundRefutes: c.BoundRefutes, BoundWidth: c.BoundWidth, Dissociated: dissociated,
		Degraded: ex.degraded, Replans: replans,
	})
	return res
}

// validate rejects nil arguments and schema mismatches before any
// planning or inference runs; Plan and the Eval entry points share it.
func validate(eng *derive.Engine, rel *relation.Relation, q *Query) error {
	if eng == nil || rel == nil || q == nil {
		return fmt.Errorf("query: nil engine, relation, or query")
	}
	if d := eng.Model().Schema.Diff(rel.Schema); d != "" {
		return &derive.SchemaMismatchError{Model: eng.Model().Schema, Data: rel.Schema, Diff: d}
	}
	if d := eng.Model().Schema.Diff(q.schema); d != "" {
		return fmt.Errorf("query: compiled against a different schema: %s", d)
	}
	return nil
}

// executor runs one evaluation over a compiled plan.
type executor struct {
	q        *Query
	eng      *derive.Engine
	rel      *relation.Relation
	plan     *plan
	pools    derive.Pools
	progress ProgressFunc

	// Deadline budget (fail-soft degradation). When the evaluation context
	// carries a deadline, the executor watches the remaining budget and —
	// once it dips under the safety margin — answers the remaining
	// expensive tuples from their planned dissociation intervals instead
	// of deriving them, so the request returns sound bounds instead of a
	// context error. Without a deadline none of this engages and every
	// answer stays bit-identical to the oracle.
	deadline  time.Time
	margin    time.Duration
	hasDL     bool
	exhausted bool // sticky: once the budget is spent, stay degraded
	degraded  bool
	degTuples int64

	// Explain-analyze timing accumulator and the request's span recorder
	// (nil when untraced). See timing.go.
	tm execTiming
	tr *obs.Trace
}

// newExecutor builds the executor for one evaluation, capturing the
// context's deadline budget. The safety margin is an eighth of the
// remaining budget clamped to [2ms, 500ms]: wide enough to fold the
// remaining scan from intervals before the context actually expires.
func newExecutor(ctx context.Context, q *Query, eng *derive.Engine, rel *relation.Relation,
	pl *plan, pools derive.Pools, progress ProgressFunc) *executor {
	ex := &executor{q: q, eng: eng, rel: rel, plan: pl, pools: pools, progress: progress}
	ex.tr = obs.TraceFrom(ctx)
	ex.tm.enabled = q.analyze || ex.tr != nil
	if dl, ok := ctx.Deadline(); ok {
		ex.hasDL = true
		ex.deadline = dl
		m := time.Until(dl) / 8
		if m < 2*time.Millisecond {
			m = 2 * time.Millisecond
		}
		if m > 500*time.Millisecond {
			m = 500 * time.Millisecond
		}
		ex.margin = m
	}
	return ex
}

// budgetExhausted reports (stickily) that the deadline budget has dipped
// under the safety margin, so expensive resolutions must stop.
func (ex *executor) budgetExhausted() bool {
	if !ex.hasDL || ex.exhausted {
		return ex.exhausted
	}
	if time.Until(ex.deadline) <= ex.margin {
		ex.exhausted = true
	}
	return ex.exhausted
}

// scanErr is the in-loop cancellation check: a plain cancellation aborts
// the scan, but a spent deadline budget does not — the operators degrade
// to bounds instead of failing.
func (ex *executor) scanErr(ctx context.Context) error {
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if ex.hasDL && errors.Is(err, context.DeadlineExceeded) {
		ex.exhausted = true
		return nil
	}
	return err
}

// degrade accounts one tuple answered from its interval because the
// budget ran out. Degraded tuples count as Bounded — they were decided by
// their bound, just not by choice — keeping Scanned = Pruned + Bounded +
// Derived intact.
func (ex *executor) degrade(c *Counters, iv derive.Interval) {
	ex.degraded = true
	ex.degTuples++
	c.Bounded++
	c.BoundWidth += iv.Width()
}

// expensiveTier reports a tier whose exact resolution runs block
// derivation (and so can be refused or interrupted by the budget). The
// cheap tiers — skip, certain, observed, vote — stay exact even after
// exhaustion: they cost no context-bound inference.
func expensiveTier(t tupleTier) bool { return t == tierBound || t == tierDerive }

// probOrDegrade resolves planned tuple i exactly unless the deadline
// budget is spent, in which case an expensive tuple is answered from its
// planned interval: the bool result reports that degradation, and the
// caller folds act.iv instead of a point mass. An in-flight derivation
// killed by the deadline is converted the same way (its derive accounting
// is undone first).
func (ex *executor) probOrDegrade(ctx context.Context, i int, c *Counters) (float64, bool, error) {
	act := ex.plan.acts[i]
	if expensiveTier(act.tier) && ex.budgetExhausted() {
		ex.degrade(c, act.iv)
		return 0, true, nil
	}
	p, err := ex.exactProb(ctx, i, c)
	if err != nil && expensiveTier(act.tier) && ex.hasDL && errors.Is(err, context.DeadlineExceeded) {
		c.Derived--
		c.BoundWidth -= act.iv.Width()
		ex.exhausted = true
		ex.degrade(c, act.iv)
		return 0, true, nil
	}
	return p, false, err
}

// clamp1 caps an interval's upper side at 1: the dissociation envelopes
// carry a float-margin ceiling just above 1, but no satisfaction
// probability exceeds 1, so degraded folds tighten to min(Hi, 1).
func clamp1(hi float64) float64 { return math.Min(hi, 1) }

// emit reports progress to the streaming observer, if any.
func (ex *executor) emit(res *Result) error {
	if ex.progress == nil {
		return nil
	}
	return ex.progress(res)
}

// valueMass is one positive-mass completion value of a marginal CPD.
type valueMass struct {
	v int
	p float64
}

// orderedMass lists d's positive-mass values in the exact order
// pdb.NewBlock would emit them as alternatives: built in value order,
// stable-sorted by descending probability (so equal-probability values
// keep value order). Replicating the order matters — float sums are
// order-sensitive, and the evaluator's contract is bit-identity with the
// derived block.
func orderedMass(d dist.Dist) []valueMass {
	ord := make([]valueMass, 0, len(d))
	for v, p := range d {
		if p > 0 {
			ord = append(ord, valueMass{v: v, p: p})
		}
	}
	slices.SortStableFunc(ord, func(x, y valueMass) int {
		switch {
		case x.p > y.p:
			return -1
		case x.p < y.p:
			return 1
		}
		return 0
	})
	return ord
}

// altsProb sums the probability of the satisfying alternatives, in block
// order — exactly the naive evaluation of a derived block.
func (ex *executor) altsProb(alts []pdb.Alternative) float64 {
	var s float64
	for _, a := range alts {
		if ex.plan.satisfies(a.Tuple) {
			s += a.Prob
		}
	}
	return s
}

// distProb is the satisfaction probability of a single-missing tuple
// whose missing attribute attr completes according to d: the sum of the
// satisfying completions' mass, in block-alternative order, bit-identical
// to altsProb over the block the derivation path would expand.
func (ex *executor) distProb(attr int, d dist.Dist) float64 {
	set := ex.q.sat[attr]
	var s float64
	for _, vm := range orderedMass(d) {
		if set == nil || set.contains(vm.v) {
			s += vm.p
		}
	}
	return s
}

// distAlts expands the marginal CPD of a single-missing tuple into the
// same completions, in the same order, as the derived block's
// alternatives.
func distAlts(t relation.Tuple, attr int, d dist.Dist) []pdb.Alternative {
	ord := orderedMass(d)
	alts := make([]pdb.Alternative, len(ord))
	for i, vm := range ord {
		tu := t.Clone()
		tu[attr] = vm.v
		alts[i] = pdb.Alternative{Tuple: tu, Prob: vm.p}
	}
	return alts
}

// exactProb resolves the exact satisfaction probability of planned
// tuple i, bumping the evaluation counters: tierVote from the shared
// CPD cache, tierBound and tierDerive through full block derivation
// (the bound tier's re-measured interval width feeds the tightness
// stats; a vacuous derive-tier tuple reports width 1).
func (ex *executor) exactProb(ctx context.Context, i int, c *Counters) (float64, error) {
	t := ex.rel.Tuples[i]
	switch act := ex.plan.acts[i]; act.tier {
	case tierSkip:
		return 0, nil
	case tierCertain:
		return 1, nil
	case tierObserved:
		// The conditioned posterior is already materialized; the exact
		// satisfying mass was folded at plan time (in block order). Free:
		// counts as pruned.
		return act.iv.Lo, nil
	case tierVote:
		c.Bounded++
		attr := t.MissingAttrs()[0]
		start := ex.tm.tick()
		d, _, err := ex.eng.MarginalCPD(t, attr)
		if err != nil {
			return 0, err
		}
		p := ex.distProb(attr, d)
		ex.tm.tock(start, &ex.tm.voteNS, &ex.tm.voteN)
		return p, nil
	default: // tierBound (undecided), tierDerive
		c.Derived++
		c.BoundWidth += act.iv.Width()
		start := ex.tm.tick()
		b, _, err := ex.eng.ResolveBlock(ctx, t)
		if err != nil {
			return 0, err
		}
		p := ex.altsProb(b.Alts)
		ex.tm.tock(start, &ex.tm.deriveNS, &ex.tm.deriveN)
		return p, nil
	}
}

// boundDecides reports whether an interval alone answers the MinProb
// comparison, and which way. Lo >= MinProb implies the exact probability
// reaches the threshold; Hi < MinProb implies it cannot.
func (ex *executor) boundDecides(iv derive.Interval) (decided, in bool) {
	switch {
	case iv.Lo >= ex.q.minProb:
		return true, true
	case iv.Hi < ex.q.minProb:
		return true, false
	default:
		return false, false
	}
}

// decideBound consumes a bound-tier decision into the counters.
func decideBound(c *Counters, iv derive.Interval, in bool) {
	c.Bounded++
	c.BoundWidth += iv.Width()
	if !in {
		c.BoundRefutes++
	}
}

// prefetch warms the engine caches for the given tuple indices across
// the request pools.
func (ex *executor) prefetch(ctx context.Context, idx []int) {
	if len(idx) == 0 {
		return
	}
	work := make([]relation.Tuple, len(idx))
	for i, j := range idx {
		work[i] = ex.rel.Tuples[j]
	}
	start := ex.tm.tick()
	ex.eng.PrefetchBlocks(ctx, work, ex.pools)
	if ex.tm.enabled {
		ex.tm.prefetchNS += time.Since(start).Nanoseconds()
		ex.tm.prefetchN += int64(len(idx))
	}
}

// evalCount folds per-tuple satisfaction probabilities in input order:
// the expected count, or — with a threshold — the number of tuples whose
// probability reaches it. With a threshold, bound-tier tuples whose
// interval clears or refutes it are decided without derivation, and only
// the straddling remainder joins the prefetched worklist.
func (ex *executor) evalCount(ctx context.Context) (*Result, error) {
	res := &Result{Op: Count}
	var work []int
	for i := range ex.rel.Tuples {
		switch act := ex.plan.acts[i]; act.tier {
		case tierVote, tierDerive:
			work = append(work, i)
		case tierBound:
			if decided, _ := ex.boundDecides(act.iv); !decided {
				work = append(work, i)
			}
		}
	}
	ex.prefetch(ctx, work)
	var degExtra float64   // expected mode: sum of min(Hi,1)-Lo over degraded tuples
	var degUndecided int64 // thresholded mode: degraded tuples the interval leaves open
	for i := range ex.rel.Tuples {
		if err := ex.scanErr(ctx); err != nil {
			return nil, err
		}
		act := ex.plan.acts[i]
		if act.tier == tierSkip {
			continue // contributes exactly 0, and 0 is never >= a positive threshold
		}
		if act.tier == tierBound {
			if decided, in := ex.boundDecides(act.iv); decided {
				decideBound(&res.Counters, act.iv, in)
				if in {
					res.Count++
				}
				continue
			}
		}
		p, deg, err := ex.probOrDegrade(ctx, i, &res.Counters)
		if err != nil {
			return nil, err
		}
		if deg {
			// Fold the interval instead of the point mass: the expected
			// count takes the lower side (Bounds carries the slack); a
			// thresholded count leaves the tuple undecided.
			if ex.q.minProb > 0 {
				if decided, in := ex.boundDecides(act.iv); decided {
					if in {
						res.Count++
					}
				} else {
					degUndecided++
				}
			} else {
				res.Expected += act.iv.Lo
				degExtra += clamp1(act.iv.Hi) - act.iv.Lo
			}
			continue
		}
		if ex.q.minProb > 0 {
			if p >= ex.q.minProb {
				res.Count++
			}
		} else {
			res.Expected += p
		}
	}
	if ex.degraded {
		if ex.q.minProb > 0 {
			res.Bounds = &derive.Interval{Lo: float64(res.Count), Hi: float64(res.Count + degUndecided)}
		} else {
			res.Bounds = &derive.Interval{Lo: res.Expected, Hi: res.Expected + degExtra}
		}
	}
	return res, nil
}

// evalExists computes the probability that at least one tuple satisfies
// the predicates, 1 - prod(1 - p_t) under block independence. A complete
// satisfying tuple is a certain witness: the product has an exactly-zero
// factor, so the answer is exactly 1 with no inference at all. With a
// threshold, a derivation-free pass first folds each tuple's sound lower
// bound (exact for cheap tiers, the dissociation interval's Lo for
// bound-tier tuples, 0 for derive-tier ones) in input order; the
// accumulated existence bound never exceeds the exact probability, so
// crossing the threshold there answers yes — early, and without a single
// chain. Only a non-crossing falls back to the exact sequential scan,
// which still stops as soon as the exact accumulation crosses. Without a
// threshold, the worklist is prefetched in parallel and folded fully.
func (ex *executor) evalExists(ctx context.Context) (*Result, error) {
	res := &Result{Op: Exists}
	for _, act := range ex.plan.acts {
		if act.tier == tierCertain {
			res.Prob, res.Exists, res.EarlyStop = 1, true, true
			return res, nil
		}
	}
	if ex.q.minProb > 0 {
		// Pass 1: derivation-free lower-bound accumulation. The free
		// bound-tier contributions fold first, so a crossing they achieve
		// alone costs not a single vote; the single-missing votes follow
		// in input order, each checked against the threshold so the pass
		// stops at the earliest crossing. Counters land in a scratch:
		// they only count if this pass decides. (When neither pass-1
		// source crosses, the votes were still not wasted — they sit in
		// the shared CPD cache for pass 2 and every later query.)
		var c Counters
		miss := 1.0 // upper bound on the probability that no tuple satisfies
		crossed := false
		for i := range ex.rel.Tuples {
			act := ex.plan.acts[i]
			switch act.tier {
			case tierBound:
				c.Bounded++
				c.BoundWidth += act.iv.Width()
				miss *= 1 - act.iv.Lo
			case tierObserved:
				// An observed tuple's mass is exact and free; fold it into
				// the derivation-free bound like the interval lows.
				miss *= 1 - act.iv.Lo
			default:
				continue
			}
			if 1-miss >= ex.q.minProb {
				crossed = true
				break
			}
		}
		for i := range ex.rel.Tuples {
			if crossed {
				break
			}
			if err := ex.scanErr(ctx); err != nil {
				return nil, err
			}
			if ex.plan.acts[i].tier != tierVote {
				continue
			}
			p, err := ex.exactProb(ctx, i, &c)
			if err != nil {
				return nil, err
			}
			miss *= 1 - p
			if 1-miss >= ex.q.minProb {
				crossed = true
			}
		}
		if crossed {
			res.Counters = c
			res.Prob, res.Exists, res.EarlyStop = 1-miss, true, true
			return res, nil
		}
		// Re-plan round (adaptive only): pass 1 already paid for every vote
		// and the plan carries every interval, so the derivation-free UPPER
		// bound on the existence probability is now free — exact masses for
		// the cheap tiers, the clamped interval upper side for bound- and
		// derive-tier tuples, folded in input order. If even that cannot
		// reach the threshold, pass 2 would derive every open tuple only to
		// confirm a no: answer it here, deriving nothing. The collective
		// refute is one-sided (Hi >= exact per factor, so the product bounds
		// the exact miss mass from below and 1-missHi bounds the existence
		// probability from above); the reported probability stays the
		// pass-1 lower bound, which never exceeds the exact mass — the
		// early-stop contract. A vacuous derive-tier tuple zeroes its
		// factor, so the round declines automatically when derivation could
		// still flip the decision.
		if ex.plan.info.Adaptive != nil {
			missHi := 1.0
			cut := 0
			var rc Counters
			for i := range ex.rel.Tuples {
				switch act := ex.plan.acts[i]; act.tier {
				case tierSkip:
				case tierObserved:
					missHi *= 1 - act.iv.Lo
				case tierVote:
					p, err := ex.exactProb(ctx, i, &rc)
					if err != nil {
						return nil, err
					}
					missHi *= 1 - p
				default: // tierBound, tierDerive
					missHi *= 1 - clamp1(act.iv.Hi)
					cut++
					rc.Bounded++
					rc.BoundWidth += act.iv.Width()
				}
				if missHi == 0 {
					break
				}
			}
			// The round only counts when it cut candidates pass 2 would have
			// derived; with no open bound-tier factor pass 2 is already cheap
			// and the exact scan keeps the reported probability exact.
			if cut > 0 && missHi > 0 && 1-missHi < ex.q.minProb {
				faultinject.Fire("query.replan")
				a := ex.plan.info.Adaptive
				a.Replans++
				a.ReplanCut = append(a.ReplanCut, cut)
				res.Counters = rc
				res.Prob, res.Exists, res.EarlyStop = 1-miss, false, true
				return res, nil
			}
		}
		// Pass 2: the exact sequential scan (votes are already cached).
		// Under a spent budget, degraded tuples fold both interval sides:
		// miss keeps the 1-Lo factors (lower bound on the existence
		// probability, so the early stop stays sound) and missLo keeps the
		// 1-min(Hi,1) factors for the interval's upper side.
		miss = 1.0
		missLo := 1.0
		for i := range ex.rel.Tuples {
			if err := ex.scanErr(ctx); err != nil {
				return nil, err
			}
			if ex.plan.acts[i].tier == tierSkip {
				continue // factor 1 - 0: multiplying by 1 is exact
			}
			p, deg, err := ex.probOrDegrade(ctx, i, &res.Counters)
			if err != nil {
				return nil, err
			}
			if deg {
				iv := ex.plan.acts[i].iv
				miss *= 1 - iv.Lo
				missLo *= 1 - clamp1(iv.Hi)
			} else {
				miss *= 1 - p
				missLo *= 1 - p
			}
			if 1-miss >= ex.q.minProb {
				res.Prob, res.Exists, res.EarlyStop = 1-miss, true, true
				if ex.degraded {
					res.Bounds = &derive.Interval{Lo: res.Prob, Hi: 1}
				}
				return res, nil
			}
		}
		res.Prob = 1 - miss
		res.Exists = res.Prob >= ex.q.minProb
		if ex.degraded {
			res.Bounds = &derive.Interval{Lo: 1 - miss, Hi: 1 - missLo}
		}
		return res, nil
	}
	var work []int
	for i := range ex.rel.Tuples {
		if t := ex.plan.acts[i].tier; t == tierVote || t == tierBound || t == tierDerive {
			work = append(work, i)
		}
	}
	ex.prefetch(ctx, work)
	miss := 1.0
	missLo := 1.0
	for i := range ex.rel.Tuples {
		if err := ex.scanErr(ctx); err != nil {
			return nil, err
		}
		if ex.plan.acts[i].tier == tierSkip {
			continue
		}
		p, deg, err := ex.probOrDegrade(ctx, i, &res.Counters)
		if err != nil {
			return nil, err
		}
		if deg {
			iv := ex.plan.acts[i].iv
			miss *= 1 - iv.Lo
			missLo *= 1 - clamp1(iv.Hi)
		} else {
			miss *= 1 - p
			missLo *= 1 - p
		}
	}
	res.Prob = 1 - miss
	res.Exists = res.Prob > 0
	if ex.degraded {
		// The point answer keeps the conservative lower side; Bounds
		// brackets the exact probability.
		res.Bounds = &derive.Interval{Lo: 1 - miss, Hi: 1 - missLo}
	}
	return res, nil
}

// rowBefore reports whether row a precedes row b in result order:
// probability descending, then input index ascending. Equal
// (probability, index) pairs — alternatives of one block — are not
// ordered here; insert appends later arrivals after earlier ones, which
// preserves block order because a tuple's alternatives are inserted
// consecutively.
func rowBefore(a, b Row) bool {
	if a.Prob != b.Prob {
		return a.Prob > b.Prob
	}
	return a.Index < b.Index
}

// insert places r into the result rows at its ordered position,
// dropping it when the threshold or an already-full rank-k cut rejects
// it. The order is the stable descending sort of all satisfying rows
// generated in input order, regardless of the order insert is called in
// — which lets the executor resolve candidates upper-bound-first while
// keeping TopK output bit-identical to the oracle's.
func (ex *executor) insert(res *Result, r Row) {
	if ex.q.minProb > 0 && r.Prob < ex.q.minProb {
		return
	}
	if ex.q.k > 0 && len(res.Rows) == ex.q.k && !rowBefore(r, res.Rows[ex.q.k-1]) {
		return
	}
	pos := sort.Search(len(res.Rows), func(i int) bool { return rowBefore(r, res.Rows[i]) })
	res.Rows = append(res.Rows, Row{})
	copy(res.Rows[pos+1:], res.Rows[pos:])
	res.Rows[pos] = r
	if ex.q.k > 0 && len(res.Rows) > ex.q.k {
		res.Rows = res.Rows[:ex.q.k]
	}
}

// insertResolved resolves planned tuple i exactly and inserts its
// satisfying completions.
func (ex *executor) insertResolved(ctx context.Context, res *Result, i int) error {
	t := ex.rel.Tuples[i]
	switch act := ex.plan.acts[i]; act.tier {
	case tierObserved:
		start := ex.tm.tick()
		for _, a := range act.blk.Alts {
			if ex.plan.satisfies(a.Tuple) {
				ex.insert(res, Row{Index: i, Tuple: a.Tuple, Prob: a.Prob})
			}
		}
		ex.tm.tock(start, &ex.tm.observedNS, &ex.tm.observedN)
	case tierVote:
		res.Counters.Bounded++
		attr := t.MissingAttrs()[0]
		start := ex.tm.tick()
		d, _, err := ex.eng.MarginalCPD(t, attr)
		if err != nil {
			return err
		}
		for _, a := range distAlts(t, attr, d) {
			if ex.plan.satisfies(a.Tuple) {
				ex.insert(res, Row{Index: i, Tuple: a.Tuple, Prob: a.Prob})
			}
		}
		ex.tm.tock(start, &ex.tm.voteNS, &ex.tm.voteN)
	default: // tierBound, tierDerive
		res.Counters.Derived++
		res.Counters.BoundWidth += act.iv.Width()
		start := ex.tm.tick()
		b, _, err := ex.eng.ResolveBlock(ctx, t)
		if err != nil {
			return err
		}
		for _, a := range b.Alts {
			if ex.plan.satisfies(a.Tuple) {
				ex.insert(res, Row{Index: i, Tuple: a.Tuple, Prob: a.Prob})
			}
		}
		ex.tm.tock(start, &ex.tm.deriveNS, &ex.tm.deriveN)
	}
	return nil
}

// cutDecides reports whether the held rank-k row already decides
// candidate i out of a TopK evaluation — the exact predicate the
// candidate loop commits (see the comment there for the tie semantics).
// The predicate is monotone in the held rows: resolutions only raise the
// rank-k probability, and at equal probability only lower its input
// index, so a cut observed by an early re-plan sweep still holds when
// the per-candidate loop accounts it.
func (ex *executor) cutDecides(res *Result, i int) bool {
	if ex.q.k <= 0 || len(res.Rows) < ex.q.k {
		return false
	}
	act := ex.plan.acts[i]
	kth := res.Rows[ex.q.k-1]
	hi := math.Min(act.iv.Hi, 1)
	strictHi := act.tier == tierBound && act.iv.Hi < 1
	return kth.Prob > hi || (kth.Prob >= hi && (strictHi || i > kth.Index))
}

// replanWave is one TopK re-plan round: before the executor prefetches
// and resolves the next wave of candidates, it re-applies the rank-k cut
// and the probability threshold under everything resolved so far, so
// candidates the tighter state already decides are never prefetched —
// the chains the static schedule would have warmed for them simply never
// run. Decisions are not committed here: the per-candidate loop
// re-checks and accounts each one identically, which is sound because
// the cut predicate is monotone (see cutDecides) — a round changes
// scheduling only, never answers. A round that cut candidates after
// fresh resolutions counts as a re-plan on PlanInfo.Adaptive.
func (ex *executor) replanWave(ctx context.Context, res *Result, wave []int, resolved int) {
	var live []int
	cut := 0
	for _, i := range wave {
		act := ex.plan.acts[i]
		switch {
		case ex.cutDecides(res, i):
			cut++
		case ex.q.minProb > 0 && act.iv.Hi < ex.q.minProb:
			// Threshold-refuted: decided at plan time, nothing to warm.
		default:
			live = append(live, i)
		}
	}
	if cut > 0 && resolved > 0 {
		faultinject.Fire("query.replan")
		a := ex.plan.info.Adaptive
		a.Replans++
		a.ReplanCut = append(a.ReplanCut, cut)
	}
	if !ex.budgetExhausted() {
		ex.prefetch(ctx, live)
	}
}

// evalTopK folds the satisfying completions into the k most probable
// rows, holding at most k rows at any time; the result is exactly the
// stable descending sort of the full selection cut to k. The cheap tiers
// resolve first (certain rows, then single-missing tuples, in input
// order); the remaining candidates are visited in decreasing
// upper-bound order, so as soon as rank k is held at a probability the
// best remaining upper bound cannot beat, every tuple left is skipped —
// soundly, because each of its satisfying completions is capped by that
// bound and would lose the (probability, input order) tie-break anyway.
// Candidates below the probability threshold are likewise refuted by
// their upper bound alone. The derivation worklist is prefetched only
// when the certain rows cannot already fill the cut.
func (ex *executor) evalTopK(ctx context.Context) (*Result, error) {
	res := &Result{Op: TopK}
	certains := 0
	for _, act := range ex.plan.acts {
		if act.tier == tierCertain {
			certains++
		}
	}
	// Adaptive rank-cut evaluations replace the blanket candidate
	// prefetch with per-wave re-planned prefetch below.
	adaptive := ex.plan.info.Adaptive != nil && ex.q.k > 0
	var cands []int // bound + derive candidates, resolved upper-bound-first
	var work []int  // prefetched derivation worklist
	prefetch := ex.q.k <= 0 || certains < ex.q.k
	for i := range ex.rel.Tuples {
		switch act := ex.plan.acts[i]; act.tier {
		case tierVote:
			if prefetch {
				work = append(work, i)
			}
		case tierBound:
			cands = append(cands, i)
			// With a rank cut in play a bound-tier candidate may never be
			// resolved, so prefetching it would waste the very chains the
			// bounds exist to skip; without one (k <= 0) only the
			// threshold can spare it, which its upper bound already
			// decides — so the survivors are prefetched like any other
			// derivation.
			if ex.q.k <= 0 && !(ex.q.minProb > 0 && act.iv.Hi < ex.q.minProb) {
				work = append(work, i)
			}
		case tierDerive:
			cands = append(cands, i)
			if prefetch && !adaptive {
				work = append(work, i)
			}
		}
	}
	ex.prefetch(ctx, work)

	// Cheap tiers in input order. Once rank k is held at probability 1,
	// every later cheap-tier row ties at best and loses the input-order
	// tie-break, so the rest of the scan costs nothing — exactly the
	// k-certain-rows early stop the pre-planner evaluator had.
	resolved := 0 // exact resolutions since the last re-plan sweep
	for i := range ex.rel.Tuples {
		if err := ex.scanErr(ctx); err != nil {
			return nil, err
		}
		if ex.q.k > 0 && len(res.Rows) == ex.q.k && res.Rows[ex.q.k-1].Prob >= 1 {
			res.EarlyStop = true
			break
		}
		switch ex.plan.acts[i].tier {
		case tierCertain:
			ex.insert(res, Row{Index: i, Tuple: ex.rel.Tuples[i], Prob: 1, Certain: true})
		case tierVote, tierObserved:
			if err := ex.insertResolved(ctx, res, i); err != nil {
				return nil, err
			}
			resolved++
			if err := ex.emit(res); err != nil {
				return nil, err
			}
		}
	}

	// With a rank cut the cheap pass could not fill, most bound-tier
	// candidates will be resolved before skipping can even begin, so
	// their chains are prefetched across the pools now (a full cut keeps
	// them lazy instead: resolving upper-bound-first raises rank k and
	// spares the tail, and prefetching would run the very chains the
	// bounds exist to skip). Adaptive evaluations prefetch per wave
	// instead, after each re-plan sweep has filtered the wave.
	if !adaptive && ex.q.k > 0 && len(res.Rows) < ex.q.k {
		var late []int
		for _, i := range cands {
			if act := ex.plan.acts[i]; act.tier == tierBound &&
				!(ex.q.minProb > 0 && act.iv.Hi < ex.q.minProb) {
				late = append(late, i)
			}
		}
		ex.prefetch(ctx, late)
	}

	// Candidates in decreasing upper-bound order (ties keep input order,
	// so the schedule is deterministic; result order never depends on it).
	slices.SortStableFunc(cands, func(a, b int) int {
		ha, hb := ex.plan.acts[a].iv.Hi, ex.plan.acts[b].iv.Hi
		switch {
		case ha > hb:
			return -1
		case ha < hb:
			return 1
		}
		return 0
	})
	// Wave size: static evaluations take all candidates in one wave (the
	// blanket prefetch above already warmed them); adaptive ones sweep a
	// re-plan round before each wave, so the wave is sized to resolve a
	// couple of rank-k turnovers between sweeps.
	wave := len(cands)
	if adaptive {
		wave = 2 * ex.q.k
		if wave < 8 {
			wave = 8
		}
	}
	var degHi float64 // best upper bound among budget-skipped candidates
	for w := 0; w < len(cands); w += wave {
		end := w + wave
		if end > len(cands) {
			end = len(cands)
		}
		if adaptive {
			ex.replanWave(ctx, res, cands[w:end], resolved)
			resolved = 0
		}
		for _, i := range cands[w:end] {
			if err := ex.scanErr(ctx); err != nil {
				return nil, err
			}
			act := ex.plan.acts[i]
			if ex.q.k > 0 && len(res.Rows) == ex.q.k {
				// A candidate is skipped only when no completion of its block
				// can displace the held rank k. Every alternative's
				// probability is capped by the tuple's upper bound AND by 1
				// (a normalized block entry never exceeds 1 even in floats,
				// so an interval clamped just above 1 still cannot be beaten
				// past it), so a beaten bound — or a tied one the
				// (probability, input index) tie-break rejects — decides the
				// tuple out. A tie decides a bound-tier candidate with an
				// unclamped upper bound unconditionally: the interval margins
				// keep such a Hi strictly unattainable. Any other tie decides
				// the tuple only when it enters after the rank-k row, because
				// probability exactly 1 IS attainable there — a capped block
				// renormalizes to a single probability-1 alternative, and a
				// joint over cardinality-1 attributes smooths to one — and a
				// probability-1 row from an earlier input index wins the
				// tie-break and belongs in the cut. cutDecides applies
				// exactly this predicate.
				if ex.cutDecides(res, i) {
					if act.tier == tierBound {
						decideBound(&res.Counters, act.iv, false)
					}
					res.EarlyStop = true
					continue
				}
			}
			if ex.q.minProb > 0 && act.iv.Hi < ex.q.minProb {
				decideBound(&res.Counters, act.iv, false)
				continue
			}
			if ex.budgetExhausted() {
				// Budget spent: stop resolving candidates. The rows already
				// held are exact; every unresolved candidate's completions are
				// capped by its interval upper side, reported through Bounds.
				ex.degrade(&res.Counters, act.iv)
				degHi = math.Max(degHi, clamp1(act.iv.Hi))
				continue
			}
			err := ex.insertResolved(ctx, res, i)
			if err != nil {
				if ex.hasDL && errors.Is(err, context.DeadlineExceeded) {
					res.Counters.Derived--
					res.Counters.BoundWidth -= act.iv.Width()
					ex.exhausted = true
					ex.degrade(&res.Counters, act.iv)
					degHi = math.Max(degHi, clamp1(act.iv.Hi))
					continue
				}
				return nil, err
			}
			resolved++
			if err := ex.emit(res); err != nil {
				return nil, err
			}
		}
	}
	if ex.degraded {
		res.Bounds = &derive.Interval{Lo: 0, Hi: degHi}
	}
	return res, nil
}

// evalGroupBy folds the satisfying probability mass into an expected
// histogram of the group attribute: certain tuples contribute 1 to their
// group, every uncertain tuple contributes its per-value satisfying mass
// (independent Bernoulli variance per block). The derivation worklist is
// prefetched in parallel first. GroupBy needs every tuple's exact mass,
// so bounds never decide tuples and the scan is always full — but under a
// spent deadline budget the remaining derive-tier tuples fold their
// dissociation intervals into per-group [Lo, Hi] brackets instead.
func (ex *executor) evalGroupBy(ctx context.Context) (*Result, error) {
	var work []int
	for i := range ex.rel.Tuples {
		if t := ex.plan.acts[i].tier; t == tierVote || t == tierDerive {
			work = append(work, i)
		}
	}
	ex.prefetch(ctx, work)
	g := ex.q.groupAttr
	card := ex.q.schema.Attrs[g].Card()
	res := &Result{Op: GroupBy, Groups: make([]Group, card)}
	for v := range res.Groups {
		res.Groups[v] = Group{Value: v, Label: ex.q.schema.Attrs[g].Domain[v]}
	}
	perValue := make([]float64, card)
	fold := func() {
		for v, p := range perValue {
			res.Groups[v].Expected += p
			res.Groups[v].Variance += p * (1 - p)
		}
	}
	// Per-group interval slack accumulated from degraded tuples: a tuple
	// whose group value is known contributes [Lo, min(Hi,1)] to that
	// group; one whose group attribute is itself missing could land its
	// satisfying mass in any group, so every group's upper side widens.
	var degHi []float64
	degradeGroup := func(i int, t relation.Tuple) {
		iv := ex.plan.acts[i].iv
		ex.degrade(&res.Counters, iv)
		if degHi == nil {
			degHi = make([]float64, card)
		}
		if gv := t[g]; gv != relation.Missing {
			// Expected holds the interval's lower side; degHi the slack.
			res.Groups[gv].Expected += iv.Lo
			degHi[gv] += clamp1(iv.Hi) - iv.Lo
		} else {
			for v := range degHi {
				degHi[v] += clamp1(iv.Hi)
			}
		}
	}
	for i, t := range ex.rel.Tuples {
		if err := ex.scanErr(ctx); err != nil {
			return nil, err
		}
		switch ex.plan.acts[i].tier {
		case tierSkip:
			continue
		case tierCertain:
			res.Groups[t[g]].Expected++
			continue
		case tierObserved:
			start := ex.tm.tick()
			clear(perValue)
			for _, a := range ex.plan.acts[i].blk.Alts {
				if ex.plan.satisfies(a.Tuple) {
					perValue[a.Tuple[g]] += a.Prob
				}
			}
			fold()
			ex.tm.tock(start, &ex.tm.observedNS, &ex.tm.observedN)
		case tierVote:
			res.Counters.Bounded++
			attr := t.MissingAttrs()[0]
			start := ex.tm.tick()
			d, _, err := ex.eng.MarginalCPD(t, attr)
			if err != nil {
				return nil, err
			}
			clear(perValue)
			set := ex.q.sat[attr]
			for _, vm := range orderedMass(d) {
				if set != nil && !set.contains(vm.v) {
					continue
				}
				gv := t[g]
				if attr == g {
					gv = vm.v
				}
				perValue[gv] += vm.p
			}
			fold()
			ex.tm.tock(start, &ex.tm.voteNS, &ex.tm.voteN)
		default: // tierDerive (groupby plans no bound tier)
			if ex.budgetExhausted() {
				degradeGroup(i, t)
				break
			}
			res.Counters.Derived++
			res.Counters.BoundWidth += ex.plan.acts[i].iv.Width()
			start := ex.tm.tick()
			b, _, err := ex.eng.ResolveBlock(ctx, t)
			if err != nil {
				if ex.hasDL && errors.Is(err, context.DeadlineExceeded) {
					res.Counters.Derived--
					res.Counters.BoundWidth -= ex.plan.acts[i].iv.Width()
					ex.exhausted = true
					degradeGroup(i, t)
					break
				}
				return nil, err
			}
			clear(perValue)
			for _, a := range b.Alts {
				if ex.plan.satisfies(a.Tuple) {
					perValue[a.Tuple[g]] += a.Prob
				}
			}
			fold()
			ex.tm.tock(start, &ex.tm.deriveNS, &ex.tm.deriveN)
		}
		if err := ex.emit(res); err != nil {
			return nil, err
		}
	}
	if ex.degraded {
		for v := range res.Groups {
			res.Groups[v].Lo = res.Groups[v].Expected
			res.Groups[v].Hi = res.Groups[v].Expected + degHi[v]
		}
	}
	return res, nil
}
