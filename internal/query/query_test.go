package query

import (
	"math"
	"strings"
	"testing"

	"repro/internal/relation"
)

func testSchema() *relation.Schema {
	return relation.MustSchema([]relation.Attribute{
		{Name: "age", Domain: []string{"20", "30", "40"}},
		{Name: "inc", Domain: []string{"50K", "100K"}},
		{Name: "edu", Domain: []string{"HS", "BS", "MS"}},
	})
}

func TestOpRoundTrip(t *testing.T) {
	for _, op := range []Op{Count, Exists, TopK, GroupBy} {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := ParseOp("explode"); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestParseWhere(t *testing.T) {
	s := testSchema()
	preds, err := ParseWhere(s, "age=30, inc>=100K ,edu!=HS")
	if err != nil {
		t.Fatal(err)
	}
	want := []Pred{
		{Attr: 0, Cmp: Eq, Value: 1},
		{Attr: 1, Cmp: Ge, Value: 1},
		{Attr: 2, Cmp: Ne, Value: 0},
	}
	if len(preds) != len(want) {
		t.Fatalf("parsed %d predicates, want %d", len(preds), len(want))
	}
	for i, p := range preds {
		if p != want[i] {
			t.Errorf("pred %d = %+v, want %+v", i, p, want[i])
		}
	}

	for _, bad := range []string{
		"", "  ", ",", "age", "age=", "=30", "bogus=30", "age=99",
		"age=30,,inc=50K", "age<>30", "age=30,bogus<1", "age=30,",
	} {
		if _, err := ParseWhere(s, bad); err == nil {
			t.Errorf("where %q should fail", bad)
		}
	}
}

// TestParseWhereErrorNamesClause: a malformed clause is reported by its
// 1-based position and text, so "age=30," doesn't fail with an unanchored
// complaint about an invisible empty condition.
func TestParseWhereErrorNamesClause(t *testing.T) {
	s := testSchema()
	cases := []struct {
		where string
		want  []string
	}{
		{"age=30,", []string{"clause 2 of 2"}},
		{"age=30,,inc=50K", []string{"clause 2 of 3"}},
		{"age=30,bogus<1", []string{"clause 2 of 2", `"bogus<1"`, "unknown attribute"}},
		{"age=99", []string{"clause 1 of 1", `"age=99"`}},
	}
	for _, c := range cases {
		_, err := ParseWhere(s, c.where)
		if err == nil {
			t.Errorf("where %q should fail", c.where)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("ParseWhere(%q) error %q missing %q", c.where, err, w)
			}
		}
	}
}

// TestParseWhereLabelWithOperatorChars: the operator is the earliest
// comparison token, so bucket labels that themselves contain comparison
// characters still parse.
func TestParseWhereLabelWithOperatorChars(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "inc", Domain: []string{"<100K", ">=100K"}},
	})
	preds, err := ParseWhere(s, "inc=>=100K")
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || preds[0] != (Pred{Attr: 0, Cmp: Eq, Value: 1}) {
		t.Errorf("parsed %+v", preds)
	}
}

func TestCompileValidation(t *testing.T) {
	s := testSchema()
	cases := []struct {
		name string
		spec Spec
	}{
		{"no predicates", Spec{Op: Count}},
		{"exists without predicates", Spec{Op: Exists}},
		{"unknown op", Spec{Op: Op(9), Where: "age=30"}},
		{"attr out of range", Spec{Op: Count, Preds: []Pred{{Attr: 9, Cmp: Eq, Value: 0}}}},
		{"value out of range", Spec{Op: Count, Preds: []Pred{{Attr: 1, Cmp: Eq, Value: 5}}}},
		{"unknown comparison", Spec{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Cmp(9), Value: 0}}}},
		{"groupby without attribute", Spec{Op: GroupBy}},
		{"groupby unknown attribute", Spec{Op: GroupBy, GroupBy: "bogus"}},
		{"group attribute on count", Spec{Op: Count, Where: "age=30", GroupBy: "age"}},
		{"minprob below range", Spec{Op: Count, Where: "age=30", MinProb: -0.1}},
		{"minprob above range", Spec{Op: Count, Where: "age=30", MinProb: 1.5}},
		{"minprob NaN", Spec{Op: Count, Where: "age=30", MinProb: math.NaN()}},
		{"minprob on groupby", Spec{Op: GroupBy, GroupBy: "age", MinProb: 0.5}},
		{"k on groupby", Spec{Op: GroupBy, GroupBy: "age", K: 3}},
		{"k on count", Spec{Op: Count, Where: "age=30", K: 5}},
		{"bad where", Spec{Op: Count, Where: "age@30"}},
	}
	for _, c := range cases {
		if _, err := Compile(s, c.spec); err == nil {
			t.Errorf("%s: Compile should fail", c.name)
		}
	}
	if _, err := Compile(nil, Spec{Op: Count, Where: "age=30"}); err == nil {
		t.Error("nil schema should fail")
	}
}

// TestCompileSatisfyingSets: predicates on one attribute intersect, and
// the compiled sets drive classification.
func TestCompileSatisfyingSets(t *testing.T) {
	s := testSchema()
	q, err := Compile(s, Spec{Op: Count, Where: "age>20,age<40"})
	if err != nil {
		t.Fatal(err)
	}
	set := q.sat[0]
	if set == nil || set.n != 1 || !set.contains(1) || set.contains(0) || set.contains(2) {
		t.Errorf("age in (20,40) compiled to %+v", set)
	}

	// Contradictory range: empty satisfying set refutes even a missing
	// value — no completion can satisfy.
	q, err = Compile(s, Spec{Op: Count, Where: "age<20"})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := q.classify(relation.Tuple{relation.Missing, 0, 0}, nil); c != refuted {
		t.Errorf("empty satisfying set classifies as %v, want refuted", c)
	}

	// Full satisfying set entails regardless of the missing value.
	q, err = Compile(s, Spec{Op: Count, Where: "age>=20"})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := q.classify(relation.Tuple{relation.Missing, 0, 0}, nil); c != entailed {
		t.Errorf("full satisfying set classifies as %v, want entailed", c)
	}
}

func TestClassify(t *testing.T) {
	s := testSchema()
	q, err := Compile(s, Spec{Op: Count, Where: "age=30,inc=100K"})
	if err != nil {
		t.Fatal(err)
	}
	miss := relation.Missing
	cases := []struct {
		tuple relation.Tuple
		want  class
		open  int
	}{
		{relation.Tuple{1, 1, 0}, entailed, 0},
		{relation.Tuple{0, 1, 0}, refuted, 0},       // known age fails
		{relation.Tuple{1, 0, miss}, refuted, 0},    // known inc fails
		{relation.Tuple{miss, 1, 0}, openSingle, 1}, // one missing, constrained
		{relation.Tuple{1, 1, miss}, entailed, 0},   // missing attr unconstrained
		{relation.Tuple{miss, miss, 0}, openMulti, 2},
		{relation.Tuple{miss, 1, miss}, openMulti, 1}, // several missing, one open
	}
	for _, c := range cases {
		got, open := q.classify(c.tuple, nil)
		if got != c.want || len(open) != c.open {
			t.Errorf("classify(%v) = %v open %v, want %v with %d open",
				c.tuple, got, open, c.want, c.open)
		}
	}
}

func TestQueryString(t *testing.T) {
	s := testSchema()
	q, err := Compile(s, Spec{Op: TopK, Where: "age=30,inc>=100K", K: 5, MinProb: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	str := q.String()
	for _, want := range []string{"topk", "age=30", "inc>=100K", "k=5", "minprob=0.25"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}
