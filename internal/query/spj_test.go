package query

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/relation"
)

// The SPJ fixtures split a model's joined schema back into base
// relations: BN8 (a0..a3, card 2) learned over its full schema becomes
// people(a0, a1, joinkey) ⋈ cities(joinkey, a2, a3). CompileSPJ must
// reassemble exactly the relation the model was learned over, so the
// join-then-derive-everything oracle is deriveAll over spj.Rel().

// spjModel learns a BN8 model; nLeft is the split point between the
// people and cities halves of its schema.
func spjModel(t testing.TB, seed int64) (*core.Model, *bn.Instance, *rand.Rand, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, 6000)
	m, err := core.Learn(train, core.Config{SupportThreshold: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	return m, inst, rng, train.Schema.NumAttrs() / 2
}

func cloneAttr(a relation.Attribute) relation.Attribute {
	return relation.Attribute{Name: a.Name, Domain: append([]string(nil), a.Domain...)}
}

// spjSchemas builds the base schemas: people carries the model's left
// attributes plus a trailing "joinkey" FK, cities a leading "joinkey" PK
// plus the right attributes.
func spjSchemas(s *relation.Schema, nLeft int, keys []string) (people, cities *relation.Schema) {
	var pa []relation.Attribute
	for _, a := range s.Attrs[:nLeft] {
		pa = append(pa, cloneAttr(a))
	}
	pa = append(pa, relation.Attribute{Name: "joinkey", Domain: append([]string(nil), keys...)})
	ca := []relation.Attribute{{Name: "joinkey", Domain: append([]string(nil), keys...)}}
	for _, a := range s.Attrs[nLeft:] {
		ca = append(ca, cloneAttr(a))
	}
	return relation.MustSchema(pa), relation.MustSchema(ca)
}

// cityTuple assembles one cities row: key j plus the right half of a
// model-schema sample.
func cityTuple(cs *relation.Schema, sample relation.Tuple, nLeft, j int) relation.Tuple {
	tu := make(relation.Tuple, cs.NumAttrs())
	tu[0] = j
	for i := nLeft; i < len(sample); i++ {
		tu[1+i-nLeft] = sample[i]
	}
	return tu
}

// personTuple assembles one people row: the left half of a model-schema
// sample plus FK city (relation.Missing for a missing FK).
func personTuple(ps *relation.Schema, sample relation.Tuple, nLeft, city int) relation.Tuple {
	tu := make(relation.Tuple, ps.NumAttrs())
	copy(tu, sample[:nLeft])
	tu[nLeft] = city
	return tu
}

// spjSafeFixture builds base relations whose every plan is safe: cities
// are complete (no uncertain base tuple to share), while people mix
// complete rows, missing left attributes, missing FKs (whole right side
// inferred), and a dangling FK (key c5 has no cities row). Damaged rows
// repeat a small pattern pool so the oracle derivation stays cheap.
func spjSafeFixture(t testing.TB, seed int64) (*core.Model, *relation.Relation, *relation.Relation) {
	t.Helper()
	m, inst, rng, nLeft := spjModel(t, seed)
	keys := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	ps, cs := spjSchemas(m.Schema, nLeft, keys)

	cities := relation.NewRelation(cs)
	for j := 0; j < 5; j++ { // c5 stays absent: FKs to it dangle
		if err := cities.Append(cityTuple(cs, inst.Sample(rng), nLeft, j)); err != nil {
			t.Fatal(err)
		}
	}

	pool := make([]relation.Tuple, 8)
	for p := range pool {
		tu := personTuple(ps, inst.Sample(rng), nLeft, rng.Intn(5))
		switch p % 4 {
		case 0: // one left attribute missing
			tu[rng.Intn(nLeft)] = relation.Missing
		case 1: // left attribute and FK missing
			tu[rng.Intn(nLeft)] = relation.Missing
			tu[nLeft] = relation.Missing
		case 2: // FK missing: the whole right side becomes inference
			tu[nLeft] = relation.Missing
		case 3: // dangling FK
			tu[nLeft] = 5
		}
		pool[p] = tu
	}
	people := relation.NewRelation(ps)
	for i := 0; i < 108; i++ {
		tu := personTuple(ps, inst.Sample(rng), nLeft, rng.Intn(5))
		if i%2 == 1 {
			tu = pool[i%len(pool)].Clone()
		}
		if err := people.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	return m, people, cities
}

func spjSpec(s Spec, people, cities *relation.Relation) SPJSpec {
	return SPJSpec{
		Spec:   s,
		Inputs: []SPJInput{{Name: "people", Rel: people}, {Name: "cities", Rel: cities}},
		Joins:  []SPJJoin{{LeftAttr: "joinkey", RightAttr: "joinkey"}},
	}
}

// TestSPJSafeMatchesOracle is the tentpole property: safe plans evaluated
// extensionally are bit-identical to joining and deriving everything,
// across every operator, worker count, and cache bound — including an
// always-evicting cache.
func TestSPJSafeMatchesOracle(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{101, 102} {
		model, people, cities := spjSafeFixture(t, seed)
		anyPred := Spec{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Ge, Value: 0}}}
		probe, err := CompileSPJ(model.Schema, spjSpec(anyPred, people, cities))
		if err != nil {
			t.Fatal(err)
		}
		if !probe.Safe() {
			t.Fatalf("complete cities must make every plan safe: %+v", probe.JoinInfo())
		}
		if probe.Rel().Len() != people.Len() {
			t.Fatalf("join changed the row count: %d vs %d", probe.Rel().Len(), people.Len())
		}
		items := deriveAll(t, model, probe.Rel(), engineConfig(4, 4))

		cfgs := []derive.Config{engineConfig(1, 2), engineConfig(2, 4), engineConfig(8, 8)}
		evicting := engineConfig(2, 2)
		evicting.CacheEntries = 1
		cfgs = append(cfgs, evicting)
		var engines []*derive.Engine
		for _, cfg := range cfgs {
			eng, err := derive.New(model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			engines = append(engines, eng)
		}

		rng := rand.New(rand.NewSource(seed * 103))
		for _, op := range []Op{Count, Exists, TopK, GroupBy} {
			for round := 0; round < 3; round++ {
				spec := randomSpec(rng, model.Schema, op)
				spj, err := CompileSPJ(model.Schema, spjSpec(spec, people, cities))
				if err != nil {
					t.Fatal(err)
				}
				if !spj.Safe() {
					t.Fatalf("%v round %d: plan over complete cities reported unsafe", op, round)
				}
				for wi, eng := range engines {
					res, err := EvalSPJ(ctx, eng, spj, derive.Pools{}, nil)
					if err != nil {
						t.Fatalf("%v round %d engine %d: %v", op, round, wi, err)
					}
					if res.Dissociated || res.Bounds != nil {
						t.Fatalf("%v round %d: safe plan flagged dissociated: %+v", op, round, res)
					}
					if res.Plan == nil || res.Plan.Join == nil || !res.Plan.Join.Safe {
						t.Fatalf("%v round %d: join section missing from plan: %+v", op, round, res.Plan)
					}
					checkOracle(t, spj.Query().String(), spj.Query(), res, items, model.Schema)
				}
			}
		}
	}
}

// spjUnsafeFixture builds a minimal unsafe workload: cities c0 and c1
// miss attribute a<nLeft> (the predicate target) and are each shared by
// live rows; c2 and c3 are complete with a value that refutes the
// predicate. Returns the predicate's attribute and most likely value.
func spjUnsafeFixture(t testing.TB, seed int64) (*core.Model, *relation.Relation, *relation.Relation, int, int) {
	t.Helper()
	m, inst, rng, nLeft := spjModel(t, seed)
	pa := nLeft // first right-side model attribute
	freq := make([]int, m.Schema.Attrs[pa].Card())
	for i := 0; i < 500; i++ {
		freq[inst.Sample(rng)[pa]]++
	}
	v := 0
	for val, c := range freq {
		if c > freq[v] {
			v = val
		}
	}

	keys := []string{"c0", "c1", "c2", "c3"}
	ps, cs := spjSchemas(m.Schema, nLeft, keys)
	cities := relation.NewRelation(cs)
	for j := 0; j < 4; j++ {
		tu := cityTuple(cs, inst.Sample(rng), nLeft, j)
		if j < 2 {
			tu[1+pa-nLeft] = relation.Missing // the shared uncertain attribute
		} else if tu[1+pa-nLeft] == v {
			tu[1+pa-nLeft] = (v + 1) % m.Schema.Attrs[pa].Card() // complete cities never satisfy
		}
		if err := cities.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	people := relation.NewRelation(ps)
	for i, city := range []int{0, 0, 1, 1, 2, 2, 3, 3, 0, 1} {
		_ = i
		if err := people.Append(personTuple(ps, inst.Sample(rng), nLeft, city)); err != nil {
			t.Fatal(err)
		}
	}
	return m, people, cities, pa, v
}

// TestSPJUnsafeExistsBounds: an unsafe exists answer is flagged
// Dissociated with a [lo, hi] interval that contains the oracle mass,
// and a threshold the interval clears or refutes is decided without a
// single derivation.
func TestSPJUnsafeExistsBounds(t *testing.T) {
	ctx := context.Background()
	model, people, cities, pa, v := spjUnsafeFixture(t, 111)
	preds := []Pred{{Attr: pa, Cmp: Eq, Value: v}}

	spj, err := CompileSPJ(model.Schema, spjSpec(Spec{Op: Exists, Preds: preds}, people, cities))
	if err != nil {
		t.Fatal(err)
	}
	if spj.Safe() {
		t.Fatal("shared uncertain cities must make the plan unsafe")
	}
	ji := spj.JoinInfo()
	if ji.SharedUncertain != 2 {
		t.Fatalf("SharedUncertain = %d, want 2 (c0 and c1): %+v", ji.SharedUncertain, ji)
	}
	if !strings.Contains(ji.Verdict, "unsafe") {
		t.Fatalf("verdict does not say unsafe: %q", ji.Verdict)
	}
	if got := []string{"people", "cities"}; ji.Relations[0] != got[0] || ji.Relations[1] != got[1] {
		t.Fatalf("join order %v, want %v", ji.Relations, got)
	}
	if len(ji.Conditions) != 1 || ji.Conditions[0] != "people.joinkey = cities.joinkey" {
		t.Fatalf("join conditions %v", ji.Conditions)
	}

	cfg := engineConfig(2, 2)
	items := deriveAll(t, model, spj.Rel(), cfg)
	prob := oracleExists(preds, items)
	if !(prob > 0 && prob < 1) {
		t.Fatalf("degenerate fixture: oracle existence mass %v", prob)
	}
	eng, err := derive.New(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvalSPJ(ctx, eng, spj, derive.Pools{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkOracle(t, "unsafe exists", spj.Query(), res, items, model.Schema)
	if !res.Dissociated {
		t.Fatalf("unsafe exists not flagged dissociated: %+v", res)
	}
	if res.Bounds == nil || res.Bounds.Lo > prob || res.Bounds.Hi < prob {
		t.Fatalf("bounds %+v do not contain the oracle mass %v", res.Bounds, prob)
	}
	if res.Bounds.Lo > res.Prob || res.Bounds.Hi < res.Prob {
		t.Fatalf("bounds %+v do not contain the reported probability %v", res.Bounds, res.Prob)
	}
	lo, hi := res.Bounds.Lo, res.Bounds.Hi
	if !(lo > 0 && hi < 1) {
		t.Fatalf("fixture cannot exercise both threshold sides: bounds [%v, %v]", lo, hi)
	}

	// Threshold at the lower bound: the interval alone answers yes.
	spjYes, err := CompileSPJ(model.Schema, spjSpec(Spec{Op: Exists, Preds: preds, MinProb: lo}, people, cities))
	if err != nil {
		t.Fatal(err)
	}
	resYes, err := EvalSPJ(ctx, eng, spjYes, derive.Pools{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resYes.Exists || !resYes.EarlyStop || resYes.Counters.Derived != 0 {
		t.Fatalf("interval did not decide yes without derivation: %+v", resYes)
	}
	if resYes.Prob != lo || resYes.Bounds == nil {
		t.Fatalf("deciding side not reported: %+v", resYes)
	}
	checkOracle(t, "unsafe exists yes", spjYes.Query(), resYes, items, model.Schema)

	// Threshold above the upper bound: even the dissociated over-count
	// cannot reach it — no, again without derivation.
	no := hi + (1-hi)/2
	spjNo, err := CompileSPJ(model.Schema, spjSpec(Spec{Op: Exists, Preds: preds, MinProb: no}, people, cities))
	if err != nil {
		t.Fatal(err)
	}
	resNo, err := EvalSPJ(ctx, eng, spjNo, derive.Pools{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resNo.Exists || !resNo.EarlyStop || resNo.Counters.Derived != 0 {
		t.Fatalf("interval did not refute without derivation: %+v", resNo)
	}
	if resNo.Prob != hi {
		t.Fatalf("refuting side not reported: Prob = %v, want %v", resNo.Prob, hi)
	}
	checkOracle(t, "unsafe exists no", spjNo.Query(), resNo, items, model.Schema)

	// Linear operators stay exact over the same unsafe plan and are not
	// flagged.
	spjCount, err := CompileSPJ(model.Schema, spjSpec(Spec{Op: Count, Preds: preds}, people, cities))
	if err != nil {
		t.Fatal(err)
	}
	resCount, err := EvalSPJ(ctx, eng, spjCount, derive.Pools{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resCount.Dissociated || resCount.Bounds != nil {
		t.Fatalf("linear count flagged dissociated: %+v", resCount)
	}
	checkOracle(t, "unsafe count", spjCount.Query(), resCount, items, model.Schema)

	st := eng.Stats()
	if st.QueriesDissociated == 0 {
		t.Fatalf("engine stats did not record dissociated queries: %+v", st)
	}
}

// oracleProject replays the projected distinct-answer fold naively over
// the full derivation stream: per row, satisfying mass per projected
// value in block order; across rows, an independence product in input
// order; answers in first-appearance order.
func oracleProject(items []derive.Item, preds []Pred, project []int, minProb float64) []Row {
	type acc struct {
		first int
		tuple relation.Tuple
		miss  float64
	}
	var order []*acc
	seen := make(map[string]*acc)
	for _, it := range items {
		type ent struct {
			key  string
			proj relation.Tuple
			mass float64
		}
		var entries []ent
		idx := make(map[string]int)
		addAlt := func(u relation.Tuple, p float64) {
			if !holdsAll(preds, u) {
				return
			}
			var kb []byte
			for _, a := range project {
				kb = appendKeyCode(kb, u[a])
			}
			k := string(kb)
			if j, ok := idx[k]; ok {
				entries[j].mass += p
				return
			}
			proj := make(relation.Tuple, len(project))
			for pi, a := range project {
				proj[pi] = u[a]
			}
			idx[k] = len(entries)
			entries = append(entries, ent{k, proj, p})
		}
		if it.Certain() {
			addAlt(it.Tuple, 1)
		} else {
			for _, a := range it.Block.Alts {
				addAlt(a.Tuple, a.Prob)
			}
		}
		for _, e := range entries {
			a := seen[e.key]
			if a == nil {
				a = &acc{first: it.Index, tuple: e.proj, miss: 1}
				seen[e.key] = a
				order = append(order, a)
			}
			a.miss *= 1 - e.mass
		}
	}
	var rows []Row
	for _, a := range order {
		p := 1 - a.miss
		if minProb > 0 && p < minProb {
			continue
		}
		rows = append(rows, Row{Index: a.first, Tuple: a.tuple, Prob: p, Certain: p >= 1})
	}
	return rows
}

// TestSPJProjection: distinct-answer mode over a safe plan is
// bit-identical to the naive projected fold, for expected and thresholded
// counts and for topk, at several worker counts.
func TestSPJProjection(t *testing.T) {
	ctx := context.Background()
	model, people, cities := spjSafeFixture(t, 131)
	nAttrs := model.Schema.NumAttrs()
	project := []string{model.Schema.Attrs[0].Name, model.Schema.Attrs[nAttrs-1].Name}
	projIdx := []int{0, nAttrs - 1}
	preds := []Pred{{Attr: 1, Cmp: Ge, Value: 1}}

	probe, err := CompileSPJ(model.Schema, spjSpec(Spec{Op: Count, Preds: preds}, people, cities))
	if err != nil {
		t.Fatal(err)
	}
	items := deriveAll(t, model, probe.Rel(), engineConfig(4, 4))

	var engines []*derive.Engine
	for _, w := range [][2]int{{1, 2}, {8, 8}} {
		eng, err := derive.New(model, engineConfig(w[0], w[1]))
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, eng)
	}

	cases := []struct {
		name string
		spec Spec
	}{
		{"expected count", Spec{Op: Count, Preds: preds}},
		{"thresholded count", Spec{Op: Count, Preds: preds, MinProb: 0.3}},
		{"topk", Spec{Op: TopK, Preds: preds, K: 4}},
		{"topk thresholded", Spec{Op: TopK, Preds: preds, MinProb: 0.5}},
	}
	for _, tc := range cases {
		ss := spjSpec(tc.spec, people, cities)
		ss.Project = project
		spj, err := CompileSPJ(model.Schema, ss)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if spj.AnswerSchema() == nil || spj.AnswerSchema().NumAttrs() != len(project) {
			t.Fatalf("%s: answer schema %+v", tc.name, spj.AnswerSchema())
		}
		for i, name := range project {
			if spj.AnswerSchema().Attrs[i].Name != name {
				t.Fatalf("%s: answer attr %d = %q, want %q", tc.name, i, spj.AnswerSchema().Attrs[i].Name, name)
			}
		}
		want := oracleProject(items, preds, projIdx, tc.spec.MinProb)
		for wi, eng := range engines {
			res, err := EvalSPJ(ctx, eng, spj, derive.Pools{}, nil)
			if err != nil {
				t.Fatalf("%s engine %d: %v", tc.name, wi, err)
			}
			if res.Dissociated {
				t.Fatalf("%s: safe projected plan flagged dissociated", tc.name)
			}
			switch tc.spec.Op {
			case Count:
				var expected float64
				var count int64
				if tc.spec.MinProb > 0 {
					count = int64(len(want))
				} else {
					for _, r := range want {
						expected += r.Prob
					}
				}
				if res.Expected != expected || res.Count != count {
					t.Fatalf("%s engine %d: (%v, %d), want bit-identical (%v, %d)",
						tc.name, wi, res.Expected, res.Count, expected, count)
				}
			case TopK:
				sorted := append([]Row(nil), want...)
				sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Prob > sorted[b].Prob })
				if tc.spec.K > 0 && len(sorted) > tc.spec.K {
					sorted = sorted[:tc.spec.K]
				}
				requireRowsEqual(t, tc.name, res.Rows, sorted)
			}
			if res.Plan == nil || res.Plan.Join == nil || len(res.Plan.Join.Projection) != len(project) {
				t.Fatalf("%s: plan projection missing: %+v", tc.name, res.Plan)
			}
			if s := res.Plan.String(); !strings.Contains(s, "projection:") || !strings.Contains(s, "join order:") {
				t.Fatalf("%s: explain rendering incomplete:\n%s", tc.name, s)
			}
		}
	}

	// A projected unsafe plan is dissociated but still bit-identical to
	// the naive fold (the oracle derives independent blocks too).
	um, upeople, ucities, pa, v := spjUnsafeFixture(t, 137)
	upreds := []Pred{{Attr: pa, Cmp: Eq, Value: v}}
	uspec := spjSpec(Spec{Op: TopK, Preds: upreds, K: 3}, upeople, ucities)
	uspec.Project = []string{um.Schema.Attrs[pa].Name}
	uspj, err := CompileSPJ(um.Schema, uspec)
	if err != nil {
		t.Fatal(err)
	}
	if uspj.Safe() {
		t.Fatal("projected unsafe fixture reported safe")
	}
	ucfg := engineConfig(2, 2)
	uitems := deriveAll(t, um, uspj.Rel(), ucfg)
	ueng, err := derive.New(um, ucfg)
	if err != nil {
		t.Fatal(err)
	}
	ures, err := EvalSPJ(ctx, ueng, uspj, derive.Pools{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ures.Dissociated {
		t.Fatalf("projected unsafe plan not flagged dissociated: %+v", ures)
	}
	uwant := oracleProject(uitems, upreds, []int{pa}, 0)
	sort.SliceStable(uwant, func(a, b int) bool { return uwant[a].Prob > uwant[b].Prob })
	if len(uwant) > 3 {
		uwant = uwant[:3]
	}
	requireRowsEqual(t, "projected unsafe topk", ures.Rows, uwant)

	// Projection is rejected for operators without distinct answers.
	bad := spjSpec(Spec{Op: Exists, Preds: preds}, people, cities)
	bad.Project = project
	if _, err := CompileSPJ(model.Schema, bad); err == nil ||
		!strings.Contains(err.Error(), "count and topk") {
		t.Fatalf("projection on exists: err = %v", err)
	}
}

// TestSPJSafetyAnalyzer pins the safety verdict on targeted shapes:
// sharing alone is not unsafe — the shared tuple must be uncertain in an
// attribute the query depends on, on rows the query cannot refute.
func TestSPJSafetyAnalyzer(t *testing.T) {
	m, inst, rng, nLeft := spjModel(t, 141)
	s := m.Schema
	pa := nLeft     // first right-side attribute
	pb := nLeft + 1 // second right-side attribute
	keys := []string{"c0", "c1", "c2", "c3"}
	ps, cs := spjSchemas(s, nLeft, keys)

	// c0 misses pa, c1 misses pb, c2 and c3 are complete.
	cities := relation.NewRelation(cs)
	for j := 0; j < 4; j++ {
		tu := cityTuple(cs, inst.Sample(rng), nLeft, j)
		switch j {
		case 0:
			tu[1+pa-nLeft] = relation.Missing
		case 1:
			tu[1+pb-nLeft] = relation.Missing
		}
		if err := cities.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	peopleFor := func(citiesOf []int, mutate func(i int, tu relation.Tuple)) *relation.Relation {
		people := relation.NewRelation(ps)
		for i, c := range citiesOf {
			tu := personTuple(ps, inst.Sample(rng), nLeft, c)
			if mutate != nil {
				mutate(i, tu)
			}
			if err := people.Append(tu); err != nil {
				t.Fatal(err)
			}
		}
		return people
	}
	compile := func(spec Spec, people *relation.Relation) *SPJ {
		t.Helper()
		spj, err := CompileSPJ(s, spjSpec(spec, people, cities))
		if err != nil {
			t.Fatal(err)
		}
		return spj
	}
	predOn := func(a int) []Pred { return []Pred{{Attr: a, Cmp: Eq, Value: 0}} }

	// Sharing a complete city is safe.
	if spj := compile(Spec{Op: Count, Preds: predOn(pa)}, peopleFor([]int{2, 2, 2}, nil)); !spj.Safe() {
		t.Fatalf("shared complete tuple reported unsafe: %+v", spj.JoinInfo())
	}
	// Sharing c0 (missing pa) under a predicate on pb only: the missing
	// attribute is irrelevant to the query.
	if spj := compile(Spec{Op: Count, Preds: predOn(pb)}, peopleFor([]int{0, 0}, nil)); !spj.Safe() {
		t.Fatalf("irrelevant missing attribute reported unsafe: %+v", spj.JoinInfo())
	}
	// Same sharing with the predicate on pa: unsafe, one shared tuple.
	if spj := compile(Spec{Op: Count, Preds: predOn(pa)}, peopleFor([]int{0, 0}, nil)); spj.Safe() || spj.JoinInfo().SharedUncertain != 1 {
		t.Fatalf("relevant shared tuple not flagged: %+v", spj.JoinInfo())
	}
	// Both sharing rows refuted on the left side: the engine never touches
	// them, so the plan is safe again.
	refuted := peopleFor([]int{0, 0}, func(i int, tu relation.Tuple) { tu[0] = 1 })
	spec := Spec{Op: Count, Preds: append(predOn(pa), Pred{Attr: 0, Cmp: Eq, Value: 0})}
	if spj := compile(spec, refuted); !spj.Safe() {
		t.Fatalf("refuted sharing rows reported unsafe: %+v", spj.JoinInfo())
	}
	// Dangling and missing FKs never share lineage: each row's right side
	// is its own independent unknown.
	dangling := peopleFor([]int{3, 3}, func(i int, tu relation.Tuple) {
		if i == 0 {
			tu[nLeft] = relation.Missing
		}
	})
	if spj := compile(Spec{Op: Count, Preds: predOn(pa)}, dangling); !spj.Safe() {
		t.Fatalf("dangling rows reported unsafe: %+v", spj.JoinInfo())
	}
	// The group attribute and the projection make an attribute relevant
	// even without a predicate on it.
	full := []Pred{{Attr: 0, Cmp: Ge, Value: 0}} // full satisfying set: constrains nothing
	if spj := compile(Spec{Op: GroupBy, Preds: full, GroupBy: s.Attrs[pa].Name}, peopleFor([]int{0, 0}, nil)); spj.Safe() {
		t.Fatalf("groupby on shared missing attribute reported safe: %+v", spj.JoinInfo())
	}
	proj := spjSpec(Spec{Op: Count, Preds: full}, peopleFor([]int{0, 0}, nil), cities)
	proj.Project = []string{s.Attrs[pa].Name}
	if spj, err := CompileSPJ(s, proj); err != nil {
		t.Fatal(err)
	} else if spj.Safe() {
		t.Fatalf("projection of shared missing attribute reported safe: %+v", spj.JoinInfo())
	}
}

// TestParseSPJ pins the statement grammar.
func TestParseSPJ(t *testing.T) {
	good := []struct {
		in   string
		want SPJText
	}{
		{"from people", SPJText{Base: "people"}},
		{"select * from people", SPJText{Base: "people"}},
		{"SELECT a0, a2 FROM people JOIN cities ON joinkey = joinkey WHERE a1=v0",
			SPJText{Project: []string{"a0", "a2"}, Base: "people",
				Joins: []SPJTextJoin{{Rel: "cities", LeftAttr: "joinkey", RightAttr: "joinkey"}},
				Where: "a1=v0"}},
		{"from a join b on x=y join c on u=w",
			SPJText{Base: "a", Joins: []SPJTextJoin{
				{Rel: "b", LeftAttr: "x", RightAttr: "y"},
				{Rel: "c", LeftAttr: "u", RightAttr: "w"}}}},
		{"from people where a0=v1, a1!=v0",
			SPJText{Base: "people", Where: "a0=v1, a1!=v0"}},
	}
	for _, tc := range good {
		got, err := ParseSPJ(tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if got.Base != tc.want.Base || got.Where != tc.want.Where ||
			len(got.Project) != len(tc.want.Project) || len(got.Joins) != len(tc.want.Joins) {
			t.Fatalf("%q: %+v, want %+v", tc.in, got, tc.want)
		}
		for i := range got.Project {
			if got.Project[i] != tc.want.Project[i] {
				t.Fatalf("%q: projection %v, want %v", tc.in, got.Project, tc.want.Project)
			}
		}
		for i := range got.Joins {
			if got.Joins[i] != tc.want.Joins[i] {
				t.Fatalf("%q: joins %v, want %v", tc.in, got.Joins, tc.want.Joins)
			}
		}
	}

	bad := []string{
		"",
		"people",                        // no from
		"select from people",            // empty projection
		"select a,,b from people",       // empty projection column
		"from",                          // no base
		"from a b",                      // two base names
		"from a join on x=y",            // join without relation
		"from a join b on",              // empty condition
		"from a join b on xy",           // no '='
		"from a join b on x=",           // half condition
		"from a join b x=y",             // missing 'on'
		"from a where",                  // empty where
		"select a from b trailing junk", // unparsed tail
	}
	for _, in := range bad {
		if _, err := ParseSPJ(in); err == nil {
			t.Fatalf("%q: expected parse error", in)
		}
	}

	// Relations lists base first, preserving duplicates for self-joins.
	st, err := ParseSPJ("from a join a on x=x")
	if err != nil {
		t.Fatal(err)
	}
	if rels := st.Relations(); len(rels) != 2 || rels[0] != "a" || rels[1] != "a" {
		t.Fatalf("Relations() = %v", rels)
	}
}

// TestSPJTextBind covers binding statements to inputs and the end-to-end
// parse → bind → compile → eval path, including the where tail.
func TestSPJTextBind(t *testing.T) {
	model, people, cities := spjSafeFixture(t, 151)
	s := model.Schema
	inputs := map[string]*relation.Relation{"people": people, "cities": cities}

	stmt := "from people join cities on joinkey=joinkey where " +
		s.Attrs[0].Name + "=" + s.Attrs[0].Domain[0]
	st, err := ParseSPJ(stmt)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := st.Bind(inputs, Spec{Op: Count}, false)
	if err != nil {
		t.Fatal(err)
	}
	spj, err := CompileSPJ(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := derive.New(model, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvalSPJ(context.Background(), eng, spj, derive.Pools{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	items := deriveAll(t, model, spj.Rel(), engineConfig(2, 2))
	checkOracle(t, "bound statement", spj.Query(), res, items, s)

	// A where both in the statement and in the spec is ambiguous.
	if _, err := st.Bind(inputs, Spec{Op: Count, Where: "x=y"}, false); err == nil {
		t.Fatal("double where should fail")
	}
	// Unknown relation names are rejected at bind time.
	st2, err := ParseSPJ("from people join towns on joinkey=joinkey")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Bind(inputs, Spec{Op: Count}, false); err == nil ||
		!strings.Contains(err.Error(), "towns") {
		t.Fatalf("unknown relation: err = %v", err)
	}
}

// TestCompileSPJValidation covers the compiler's error paths and the
// KeepKeys alignment (kept keys are dropped from the model-aligned
// relation, so both settings produce the same joined tuples).
func TestCompileSPJValidation(t *testing.T) {
	model, people, cities := spjSafeFixture(t, 161)
	s := model.Schema
	ok := spjSpec(Spec{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Ge, Value: 0}}}, people, cities)

	if _, err := CompileSPJ(nil, ok); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := CompileSPJ(s, SPJSpec{Spec: Spec{Op: Count}}); err == nil {
		t.Error("no inputs should fail")
	}
	mismatch := ok
	mismatch.Joins = nil
	if _, err := CompileSPJ(s, mismatch); err == nil {
		t.Error("join/input count mismatch should fail")
	}
	unnamed := ok
	unnamed.Inputs = []SPJInput{{Rel: people}, {Name: "cities", Rel: cities}}
	if _, err := CompileSPJ(s, unnamed); err == nil {
		t.Error("unnamed input should fail")
	}
	nilRel := ok
	nilRel.Inputs = []SPJInput{{Name: "people"}, {Name: "cities", Rel: cities}}
	if _, err := CompileSPJ(s, nilRel); err == nil {
		t.Error("nil input relation should fail")
	}
	badLeft := ok
	badLeft.Joins = []SPJJoin{{LeftAttr: "nope", RightAttr: "joinkey"}}
	if _, err := CompileSPJ(s, badLeft); err == nil || !strings.Contains(err.Error(), "left key") {
		t.Errorf("unknown left key: err = %v", err)
	}
	badRight := ok
	badRight.Joins = []SPJJoin{{LeftAttr: "joinkey", RightAttr: "nope"}}
	if _, err := CompileSPJ(s, badRight); err == nil || !strings.Contains(err.Error(), "right key") {
		t.Errorf("unknown right key: err = %v", err)
	}
	dup := ok
	dup.Spec = Spec{Op: TopK, K: 1, Preds: []Pred{{Attr: 0, Cmp: Ge, Value: 0}}}
	dup.Project = []string{s.Attrs[0].Name, s.Attrs[0].Name}
	if _, err := CompileSPJ(s, dup); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate projection: err = %v", err)
	}
	unknownProj := ok
	unknownProj.Spec = Spec{Op: TopK, K: 1, Preds: []Pred{{Attr: 0, Cmp: Ge, Value: 0}}}
	unknownProj.Project = []string{"nope"}
	if _, err := CompileSPJ(s, unknownProj); err == nil || !strings.Contains(err.Error(), "projection") {
		t.Errorf("unknown projection attribute: err = %v", err)
	}

	// A label outside the model domain is rejected during re-encoding.
	alien := relation.NewRelation(relation.MustSchema([]relation.Attribute{
		{Name: s.Attrs[0].Name, Domain: []string{"not-a-model-label"}},
		{Name: "joinkey", Domain: append([]string(nil), people.Schema.Attrs[people.Schema.NumAttrs()-1].Domain...)},
	}))
	if err := alien.Append(relation.Tuple{0, 0}); err != nil {
		t.Fatal(err)
	}
	alienSpec := ok
	alienSpec.Inputs = []SPJInput{{Name: "people", Rel: alien}, {Name: "cities", Rel: cities}}
	if _, err := CompileSPJ(s, alienSpec); err == nil || !strings.Contains(err.Error(), "not in the model domain") {
		t.Errorf("alien label: err = %v", err)
	}

	// KeepKeys changes the joined schema but not the model-aligned
	// relation: key columns are dropped at alignment either way.
	base, err := CompileSPJ(s, ok)
	if err != nil {
		t.Fatal(err)
	}
	kept := ok
	kept.KeepKeys = true
	withKeys, err := CompileSPJ(s, kept)
	if err != nil {
		t.Fatal(err)
	}
	if base.Rel().Len() != withKeys.Rel().Len() {
		t.Fatalf("KeepKeys changed the row count: %d vs %d", base.Rel().Len(), withKeys.Rel().Len())
	}
	for i := range base.Rel().Tuples {
		if !base.Rel().Tuples[i].Equal(withKeys.Rel().Tuples[i]) {
			t.Fatalf("KeepKeys changed aligned row %d: %v vs %v",
				i, base.Rel().Tuples[i], withKeys.Rel().Tuples[i])
		}
	}

	// Compilation never mutates the caller's relations.
	before := people.Tuples[0].Clone()
	if _, err := CompileSPJ(s, ok); err != nil {
		t.Fatal(err)
	}
	if !people.Tuples[0].Equal(before) {
		t.Fatal("CompileSPJ mutated an input relation")
	}
}
