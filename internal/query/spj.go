// Intensional SPJ layer: multi-relation select-project-join queries
// compiled to per-answer lineage over tuple events, with a safety
// analyzer that recognizes hierarchical (safe) plans and dissociation
// propagation for the rest.
//
// The paper learns one model over a PK-FK join of the base relations
// (Section I-B); this layer performs that join at query time. Each
// joined row i carries conjunctive lineage — the base tuple of every
// input it was assembled from — and derivation turns it into one
// probabilistic block, so a query answer is a DNF over those blocks. The
// existing extensional pipeline treats the blocks as independent, which
// is exactly the *dissociation* of the lineage (Gatterbauer & Suciu,
// "Dissociation and Propagation for Efficient Query Evaluation over
// Probabilistic Databases"): each shared base tuple is split into one
// independent copy per joined row.
//
// Safety. A plan is safe (hierarchical, read-once) when no uncertain
// base tuple the query depends on is shared by two or more non-refuted
// joined rows: then the dissociation changed nothing and extensional
// evaluation is exact — bit-identical to deriving the joined relation
// and evaluating naively (the oracle the property tests replay). The
// analyzer needs no engine: sharing comes from the join traces,
// refutation from evidence/structure classification, and relevance from
// the compiled predicates, group attribute, and projection.
//
// Unsafe plans. Linear operators — expected counts, threshold counts,
// per-row topk masses, groupby histograms — depend only on per-row
// marginals, which dissociation preserves, so they stay exact even over
// unsafe plans. Exists is the non-linear case: the independence product
// 1 - prod(1 - p_i) over-counts shared tuples and is a sound *upper*
// bound on the intensional existence probability, while any single row's
// probability is a sound lower bound. EvalSPJ surfaces that as
// Result.Dissociated plus a [lo, hi] interval assembled from the
// planner's per-row dissociation intervals — max_i lo_i on the low side,
// the folded 1 - prod(1 - hi_i) on the high side — and a thresholded
// exists whose interval clears (lo >= minprob) or refutes (hi < minprob)
// the threshold is decided without running a single Gibbs chain.
//
// Projection turns the query into distinct-answer mode (count and topk
// only): each answer is a projected value tuple whose probability is the
// chance at least one row completes to it and satisfies the predicates,
// folded as an independence product in input order (per-row masses sum
// in block-alternative order), so safe-plan projected answers are again
// bit-identical to the join-then-derive oracle.
package query

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/derive"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// SPJInput is one named input relation of an SPJ query.
type SPJInput struct {
	Name string
	Rel  *relation.Relation
}

// SPJJoin equi-joins the next input onto the accumulated left side:
// LeftAttr is the foreign key in the joined-so-far schema, RightAttr the
// primary key in the input being joined. Attribute names resolve exactly
// first, then by unique ".name" suffix (join prefixing and model schemas
// learned over joined CSVs both produce qualified names).
type SPJJoin struct {
	LeftAttr  string
	RightAttr string
}

// SPJSpec is the uncompiled multi-relation query: the single-relation
// Spec (operator, predicates, threshold) plus the inputs, the join
// chain, and an optional projection. Joins[j] joins Inputs[j+1] onto the
// accumulated left side; Inputs[0] is the base relation.
type SPJSpec struct {
	Spec
	Inputs []SPJInput
	Joins  []SPJJoin
	// Project lists the projected attribute names (model-schema names).
	// Non-empty switches the query to distinct-answer mode, valid for
	// Count and TopK only.
	Project []string
	// KeepKeys keeps the join key columns in the joined relation (they
	// must then exist in the model schema).
	KeepKeys bool
}

// spjOrigin locates a joined column's source: input index and attribute
// index within that input's schema.
type spjOrigin struct {
	input, attr int
}

// SPJ is a compiled SPJ query: the joined, model-aligned relation with
// per-row lineage, the compiled single-relation query over it, the
// projection, and the safety verdict.
type SPJ struct {
	q       *Query
	rel     *relation.Relation
	answers *relation.Schema
	project []int // model attr indices, in projection order
	safe    bool
	shared  int
	jinfo   JoinPlanInfo
	// rowSrc[j][i] is joined row i's source tuple index in input j (-1
	// when the row's chain dangled before reaching input j). rowSrc[0] is
	// nil: the base provenance of row i is i itself.
	rowSrc [][]int
}

// Query returns the compiled single-relation query over the joined,
// model-aligned relation.
func (s *SPJ) Query() *Query { return s.q }

// Rel returns the joined relation, aligned to the model schema. Shared;
// do not mutate.
func (s *SPJ) Rel() *relation.Relation { return s.rel }

// AnswerSchema returns the schema of projected answers (distinct-answer
// mode), or nil when the query selects whole tuples.
func (s *SPJ) AnswerSchema() *relation.Schema { return s.answers }

// Safe reports the safety verdict: true means extensional evaluation is
// exact for every operator.
func (s *SPJ) Safe() bool { return s.safe }

// JoinInfo returns a copy of the plan summary's SPJ section.
func (s *SPJ) JoinInfo() *JoinPlanInfo {
	j := s.jinfo
	return &j
}

// matchAttr reports whether joined-column name n names model attribute
// m: exact, or qualified on either side ("cities.city" matches "city",
// and an input column "x" matches a model column "right.x" learned from
// a joined CSV).
func matchAttr(m, n string) bool {
	return m == n || strings.HasSuffix(n, "."+m) || strings.HasSuffix(m, "."+n)
}

// findAttr resolves name within s: exact match first, then a unique
// suffix match.
func findAttr(s *relation.Schema, name string) (int, error) {
	if i := s.AttrIndex(name); i >= 0 {
		return i, nil
	}
	at := -1
	for i, a := range s.Attrs {
		if matchAttr(name, a.Name) {
			if at >= 0 {
				return -1, fmt.Errorf("query: attribute %q is ambiguous (matches %q and %q)",
					name, s.Attrs[at].Name, a.Name)
			}
			at = i
		}
	}
	if at < 0 {
		return -1, fmt.Errorf("query: unknown attribute %q (have %s)", name, strings.Join(s.SortedAttrNames(), ", "))
	}
	return at, nil
}

// quietModelAttr is findAttr against the model schema that reports "no
// match" (-1) instead of erroring on absence or ambiguity — used while
// re-encoding inputs, where unmatched columns are usually join keys the
// final alignment will drop.
func quietModelAttr(s *relation.Schema, name string) int {
	if i := s.AttrIndex(name); i >= 0 {
		return i
	}
	at := -1
	for i, a := range s.Attrs {
		if matchAttr(name, a.Name) {
			if at >= 0 {
				return -1
			}
			at = i
		}
	}
	return at
}

// recodeToModel clones in, re-encoding every column that names a model
// attribute into the model's domain (CSV inference sorts the labels it
// happens to see, so input codes rarely line up with model codes).
// Columns with no model counterpart — typically join keys — are copied
// verbatim.
func recodeToModel(model *relation.Schema, in *relation.Relation, inputName string) (*relation.Relation, error) {
	attrs := make([]relation.Attribute, len(in.Schema.Attrs))
	remap := make([][]int, len(attrs))
	for i, a := range in.Schema.Attrs {
		attrs[i] = relation.Attribute{Name: a.Name, Domain: append([]string(nil), a.Domain...)}
		m := quietModelAttr(model, a.Name)
		if m < 0 {
			continue
		}
		codes := make([]int, a.Card())
		for v, label := range a.Domain {
			code, err := model.ValueCode(m, label)
			if err != nil {
				return nil, fmt.Errorf("query: input %s: column %q label %q is not in the model domain of %q",
					inputName, a.Name, label, model.Attrs[m].Name)
			}
			codes[v] = code
		}
		attrs[i] = relation.Attribute{Name: a.Name, Domain: append([]string(nil), model.Attrs[m].Domain...)}
		remap[i] = codes
	}
	schema, err := relation.NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("query: input %s: %w", inputName, err)
	}
	out := relation.NewRelation(schema)
	for _, t := range in.Tuples {
		tu := make(relation.Tuple, len(t))
		for i, v := range t {
			if v != relation.Missing && remap[i] != nil {
				v = remap[i][v]
			}
			tu[i] = v
		}
		if err := out.Append(tu); err != nil {
			return nil, fmt.Errorf("query: input %s: %w", inputName, err)
		}
	}
	return out, nil
}

// recodeColumn re-encodes one column of rel (a private clone) into the
// given domain, which must contain every current label.
func recodeColumn(rel *relation.Relation, col int, domain []string) error {
	old := rel.Schema.Attrs[col].Domain
	pos := make(map[string]int, len(domain))
	for i, l := range domain {
		pos[l] = i
	}
	codes := make([]int, len(old))
	for v, label := range old {
		i, ok := pos[label]
		if !ok {
			return fmt.Errorf("query: label %q missing from aligned key domain", label)
		}
		codes[v] = i
	}
	rel.Schema.Attrs[col].Domain = append([]string(nil), domain...)
	for _, t := range rel.Tuples {
		if t[col] != relation.Missing {
			t[col] = codes[t[col]]
		}
	}
	return nil
}

// alignKeyDomains puts the two join key columns on one shared domain:
// identical domains pass through, anything else is re-encoded to the
// sorted union of their labels (deterministic whatever subset of keys
// each CSV happened to contain).
func alignKeyDomains(left *relation.Relation, lk int, right *relation.Relation, rk int) error {
	la, ra := left.Schema.Attrs[lk], right.Schema.Attrs[rk]
	if la.Card() == ra.Card() {
		same := true
		for i := range la.Domain {
			if la.Domain[i] != ra.Domain[i] {
				same = false
				break
			}
		}
		if same {
			return nil
		}
	}
	seen := make(map[string]bool, la.Card()+ra.Card())
	var union []string
	for _, l := range la.Domain {
		if !seen[l] {
			seen[l] = true
			union = append(union, l)
		}
	}
	for _, l := range ra.Domain {
		if !seen[l] {
			seen[l] = true
			union = append(union, l)
		}
	}
	sort.Strings(union)
	if err := recodeColumn(left, lk, union); err != nil {
		return err
	}
	return recodeColumn(right, rk, union)
}

// CompileSPJ validates and compiles spec against the model schema: it
// re-encodes every input into model domains, folds the join chain
// (tracking per-row lineage), aligns the joined relation to the model
// schema, compiles the single-relation query, and runs the safety
// analyzer. Input relations are cloned — registered datasets and other
// shared relations are never mutated.
func CompileSPJ(model *relation.Schema, spec SPJSpec) (*SPJ, error) {
	if model == nil {
		return nil, fmt.Errorf("query: nil model schema")
	}
	if len(spec.Inputs) == 0 {
		return nil, fmt.Errorf("query: spj requires at least one input relation")
	}
	if len(spec.Joins) != len(spec.Inputs)-1 {
		return nil, fmt.Errorf("query: %d joins cannot chain %d inputs (want %d)",
			len(spec.Joins), len(spec.Inputs), len(spec.Inputs)-1)
	}
	for i, in := range spec.Inputs {
		if in.Name == "" {
			return nil, fmt.Errorf("query: input %d has no name", i)
		}
		if in.Rel == nil {
			return nil, fmt.Errorf("query: input %q has no relation", in.Name)
		}
	}

	// Clone + re-encode each input, then fold the join chain. Every join
	// preserves row count and order (one output row per left row), so
	// joined row i is base row i throughout and each join's trace indexes
	// joined rows directly.
	clones := make([]*relation.Relation, len(spec.Inputs))
	for i, in := range spec.Inputs {
		c, err := recodeToModel(model, in.Rel, in.Name)
		if err != nil {
			return nil, err
		}
		clones[i] = c
	}
	acc := clones[0]
	prov := make(map[string]spjOrigin, acc.Schema.NumAttrs())
	for i, a := range acc.Schema.Attrs {
		prov[a.Name] = spjOrigin{input: 0, attr: i}
	}
	rowSrc := make([][]int, len(spec.Inputs))
	var conditions []string
	for j, join := range spec.Joins {
		right := clones[j+1]
		rightName := spec.Inputs[j+1].Name
		lk, err := findAttr(acc.Schema, join.LeftAttr)
		if err != nil {
			return nil, fmt.Errorf("query: join %d left key: %w", j+1, err)
		}
		rk, err := findAttr(right.Schema, join.RightAttr)
		if err != nil {
			return nil, fmt.Errorf("query: join %d (%s) right key: %w", j+1, rightName, err)
		}
		if err := alignKeyDomains(acc, lk, right, rk); err != nil {
			return nil, fmt.Errorf("query: join %d (%s): %w", j+1, rightName, err)
		}
		lkName := acc.Schema.Attrs[lk].Name
		lkOrigin := prov[lkName]
		conditions = append(conditions, fmt.Sprintf("%s.%s = %s.%s",
			spec.Inputs[lkOrigin.input].Name,
			spec.Inputs[lkOrigin.input].Rel.Schema.Attrs[lkOrigin.attr].Name,
			rightName, spec.Inputs[j+1].Rel.Schema.Attrs[rk].Name))
		out, trace, err := relation.JoinTrace(acc, right, relation.JoinSpec{
			LeftKey: lk, RightKey: rk, KeepKeys: spec.KeepKeys,
			LeftPrefix: spec.Inputs[0].Name, RightPrefix: rightName,
		})
		if err != nil {
			return nil, fmt.Errorf("query: join %d (%s): %w", j+1, rightName, err)
		}
		// Provenance: left names pass through unchanged (they are unique
		// and added first, so addAttr never prefixes them); the right
		// side's columns occupy the output tail, in right-schema order
		// minus the dropped PK, under possibly prefixed names.
		if !spec.KeepKeys {
			delete(prov, lkName)
		}
		nLeft := acc.Schema.NumAttrs()
		if !spec.KeepKeys {
			nLeft--
		}
		pos := nLeft
		for ri := range right.Schema.Attrs {
			if ri == rk && !spec.KeepKeys {
				continue
			}
			prov[out.Schema.Attrs[pos].Name] = spjOrigin{input: j + 1, attr: ri}
			pos++
		}
		rowSrc[j+1] = trace
		acc = out
	}

	// Align the joined relation to the model schema: one column per model
	// attribute, matched by name, with identical domains. Extra joined
	// columns (kept keys the model was not learned over) are dropped —
	// keys are identifiers, not statistical evidence.
	srcCol := make([]int, model.NumAttrs())
	finalProv := make([]spjOrigin, model.NumAttrs())
	for m, ma := range model.Attrs {
		c, err := findAttr(acc.Schema, ma.Name)
		if err != nil {
			return nil, fmt.Errorf("query: joined relation: %w", err)
		}
		if d := ma.Domain; len(d) != len(acc.Schema.Attrs[c].Domain) || func() bool {
			for i := range d {
				if d[i] != acc.Schema.Attrs[c].Domain[i] {
					return true
				}
			}
			return false
		}() {
			return nil, fmt.Errorf("query: joined column %q does not carry the model domain of %q (is it a join key the model was not learned over?)",
				acc.Schema.Attrs[c].Name, ma.Name)
		}
		srcCol[m] = c
		finalProv[m] = prov[acc.Schema.Attrs[c].Name]
	}
	final := relation.NewRelation(model)
	for _, t := range acc.Tuples {
		tu := make(relation.Tuple, model.NumAttrs())
		for m, c := range srcCol {
			tu[m] = t[c]
		}
		if err := final.Append(tu); err != nil {
			return nil, fmt.Errorf("query: joined relation: %w", err)
		}
	}

	// Compile the single-relation query over the model schema, then the
	// projection.
	q, err := Compile(model, spec.Spec)
	if err != nil {
		return nil, err
	}
	spj := &SPJ{q: q, rel: final, rowSrc: rowSrc}
	if len(spec.Project) > 0 {
		if q.op != Count && q.op != TopK {
			return nil, fmt.Errorf("query: projection (distinct answers) is only valid for count and topk, not %v", q.op)
		}
		attrs := make([]relation.Attribute, 0, len(spec.Project))
		seen := make(map[int]bool, len(spec.Project))
		for _, name := range spec.Project {
			m, err := findAttr(model, name)
			if err != nil {
				return nil, fmt.Errorf("query: projection: %w", err)
			}
			if seen[m] {
				return nil, fmt.Errorf("query: projection lists %q twice", model.Attrs[m].Name)
			}
			seen[m] = true
			spj.project = append(spj.project, m)
			attrs = append(attrs, model.Attrs[m])
		}
		spj.answers, err = relation.NewSchema(attrs)
		if err != nil {
			return nil, fmt.Errorf("query: projection: %w", err)
		}
		// Distinct-answer mode needs every row's exact per-completion
		// masses; interval planning would be wasted work.
		q.boundsOff = true
	}

	spj.analyzeSafety(spec, clones, finalProv)
	names := make([]string, len(spec.Inputs))
	for i, in := range spec.Inputs {
		names[i] = in.Name
	}
	verdict := "safe (hierarchical) — extensional evaluation is exact"
	if !spj.safe {
		verdict = fmt.Sprintf("unsafe — %d base tuple(s) shared by joined rows with relevant missing attributes; exists answers are dissociation upper bounds", spj.shared)
	}
	var projNames []string
	for _, m := range spj.project {
		projNames = append(projNames, model.Attrs[m].Name)
	}
	spj.jinfo = JoinPlanInfo{
		Relations: names, Conditions: conditions, Projection: projNames,
		Safe: spj.safe, SharedUncertain: spj.shared, Verdict: verdict,
	}
	return spj, nil
}

// analyzeSafety decides the safety verdict. The plan is unsafe exactly
// when some base tuple is (a) shared — it is the lineage of two or more
// joined rows that evidence/structure cannot refute — and (b) relevantly
// uncertain — it contributed a missing attribute the query depends on
// (constrained by a non-trivial satisfying set, the group attribute, or
// projected). Dangling rows never share lineage (each gets its own
// all-missing block), and the base input maps 1:1 onto joined rows, so
// only the joined inputs can break the hierarchy.
func (s *SPJ) analyzeSafety(spec SPJSpec, clones []*relation.Relation, finalProv []spjOrigin) {
	relevant := make([]bool, s.q.schema.NumAttrs())
	for _, a := range s.q.constrained {
		if set := s.q.sat[a]; !set.full() && !set.empty() {
			relevant[a] = true
		}
	}
	if s.q.groupAttr >= 0 {
		relevant[s.q.groupAttr] = true
	}
	for _, m := range s.project {
		relevant[m] = true
	}
	// Invert provenance: per input, source attr -> model attr.
	toModel := make([]map[int]int, len(clones))
	for m, o := range finalProv {
		if toModel[o.input] == nil {
			toModel[o.input] = make(map[int]int)
		}
		toModel[o.input][o.attr] = m
	}
	live := make([]bool, len(s.rel.Tuples))
	var buf []int
	for i, t := range s.rel.Tuples {
		c, open := s.q.classify(t, buf)
		if open != nil {
			buf = open[:0]
		}
		live[i] = c != refuted
	}
	s.shared = 0
	for j := 1; j < len(clones); j++ {
		uses := make(map[int]int, len(clones[j].Tuples))
		for i, r := range s.rowSrc[j] {
			if r >= 0 && live[i] {
				uses[r]++
			}
		}
		for r, n := range uses {
			if n < 2 {
				continue
			}
			for srcA, v := range clones[j].Tuples[r] {
				if v != relation.Missing {
					continue
				}
				if m, ok := toModel[j][srcA]; ok && relevant[m] {
					s.shared++
					break
				}
			}
		}
	}
	s.safe = s.shared == 0
}

// EvalSPJ evaluates a compiled SPJ query. Safe plans (and linear
// operators over unsafe plans) delegate to the extensional pipeline and
// are exact; unsafe exists runs the dissociation pre-pass (deciding the
// threshold from the interval alone when it clears) before falling back
// to the exact dissociated product; projected queries run the
// distinct-answer evaluator. Progress observers fire for unprojected
// topk/groupby only — distinct-answer results are combined at the end of
// the scan, so they stream as a single final record.
func EvalSPJ(ctx context.Context, eng *derive.Engine, spj *SPJ, pools derive.Pools, progress ProgressFunc) (*Result, error) {
	if spj == nil {
		return nil, fmt.Errorf("query: nil spj")
	}
	wallStart := time.Now()
	q := spj.q
	if err := validate(eng, spj.rel, q); err != nil {
		return nil, err
	}
	pl, err := q.newPlan(ctx, eng, spj.rel, nil)
	if err != nil {
		return nil, err
	}
	planDur := time.Since(wallStart)
	planSeconds.Observe(planDur)
	pl.info.Join = spj.JoinInfo()
	ex := newExecutor(ctx, q, eng, spj.rel, pl, pools, progress)
	ex.tm.start = wallStart
	ex.tm.planNS = planDur.Nanoseconds()
	var res *Result
	switch {
	case len(spj.project) > 0:
		res, err = ex.evalProject(ctx, spj.project)
	case q.op == Exists && !spj.safe:
		res, err = ex.evalExistsDissociated(ctx)
	default:
		res, err = ex.dispatch(ctx)
	}
	if err != nil {
		pl.release()
		return nil, err
	}
	dissociated := !spj.safe && (q.op == Exists || len(spj.project) > 0)
	res = ex.finish(res, dissociated)
	pl.release()
	return res, nil
}

// PlanSPJ compiles the evaluation plan of an SPJ query without executing
// it — Plan over the joined relation, with the join/safety section
// attached. The -explain primitive for SQL queries.
func PlanSPJ(ctx context.Context, eng *derive.Engine, spj *SPJ) (*PlanInfo, error) {
	if spj == nil {
		return nil, fmt.Errorf("query: nil spj")
	}
	info, err := Plan(ctx, eng, spj.rel, spj.q)
	if err != nil {
		return nil, err
	}
	info.Join = spj.JoinInfo()
	return info, nil
}

// evalExistsDissociated evaluates exists over an unsafe plan. A pre-pass
// assembles the sound [lo, hi] interval around the dissociated existence
// mass purely from the plan — lo = max_i lo_i (any single row's
// probability bounds the union from below, for any dependence
// structure), hi = 1 - prod(1 - hi_i) (the dissociated product itself is
// an upper bound on the intensional mass, and folding interval upper
// sides bounds the product) — deciding a thresholded exists without any
// derivation when the interval clears or refutes MinProb. Otherwise the
// exact extensional evaluator runs and the interval rides along on
// Result.Bounds.
func (ex *executor) evalExistsDissociated(ctx context.Context) (*Result, error) {
	var c Counters
	lo, hiMiss := 0.0, 1.0
	for i := range ex.rel.Tuples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		act := ex.plan.acts[i]
		var l, h float64
		switch act.tier {
		case tierSkip:
			continue
		case tierCertain:
			l, h = 1, 1
		case tierObserved:
			l, h = act.iv.Lo, act.iv.Hi // exact [p, p]
		case tierVote:
			t := ex.rel.Tuples[i]
			attr := t.MissingAttrs()[0]
			d, _, err := ex.eng.MarginalCPD(t, attr)
			if err != nil {
				return nil, err
			}
			p := ex.distProb(attr, d)
			c.Bounded++
			l, h = p, p
		case tierBound:
			c.Bounded++
			c.BoundWidth += act.iv.Width()
			l, h = act.iv.Lo, math.Min(act.iv.Hi, 1)
		default: // tierDerive
			l, h = 0, 1
		}
		if l > lo {
			lo = l
		}
		hiMiss *= 1 - h
	}
	bounds := &derive.Interval{Lo: lo, Hi: 1 - hiMiss}
	if ex.q.minProb > 0 {
		switch {
		case lo >= ex.q.minProb:
			// The best single-row lower bound already reaches the
			// threshold — yes, with zero derivations.
			return &Result{Op: Exists, Prob: lo, Exists: true, EarlyStop: true,
				Bounds: bounds, Counters: c}, nil
		case bounds.Hi < ex.q.minProb:
			// Even the dissociated over-count cannot reach it — no.
			return &Result{Op: Exists, Prob: bounds.Hi, Exists: false, EarlyStop: true,
				Bounds: bounds, Counters: c}, nil
		}
	}
	// Undecided (or unthresholded): evaluate the dissociated product
	// exactly. The pre-pass counters are discarded — evalExists recounts,
	// and its votes were already paid into the shared CPD cache.
	res, err := ex.evalExists(ctx)
	if err != nil {
		return nil, err
	}
	res.Bounds = bounds
	return res, nil
}

// spjAnswer accumulates one distinct projected answer: 1 - miss is the
// probability at least one row completes to it and satisfies the
// predicates.
type spjAnswer struct {
	first int // input row of first appearance (tie-break)
	tuple relation.Tuple
	miss  float64
}

// evalProject runs distinct-answer mode: per input row, the satisfying
// completions' masses are folded per projected value (in
// block-alternative order), then combined across rows as an independence
// product in input order — the same float operations the
// join-then-derive oracle performs, so safe-plan answers are
// bit-identical. Bounds are off (boundsOff): every non-refuted row
// resolves exactly.
func (ex *executor) evalProject(ctx context.Context, project []int) (*Result, error) {
	res := &Result{Op: ex.q.op}
	var work []int
	for i := range ex.rel.Tuples {
		switch ex.plan.acts[i].tier {
		case tierVote, tierBound, tierDerive:
			work = append(work, i)
		}
	}
	ex.prefetch(ctx, work)

	var order []*spjAnswer
	seen := make(map[string]*spjAnswer)
	var keyBuf []byte
	type rowEntry struct {
		key  string
		proj relation.Tuple
		mass float64
	}
	var entries []rowEntry
	rowIdx := make(map[string]int)

	foldRow := func(i int, alts []pdb.Alternative) {
		entries = entries[:0]
		clear(rowIdx)
		for _, a := range alts {
			if !ex.plan.satisfies(a.Tuple) {
				continue
			}
			keyBuf = keyBuf[:0]
			for _, p := range project {
				keyBuf = appendKeyCode(keyBuf, a.Tuple[p])
			}
			k := string(keyBuf)
			if j, ok := rowIdx[k]; ok {
				entries[j].mass += a.Prob
				continue
			}
			proj := make(relation.Tuple, len(project))
			for pi, p := range project {
				proj[pi] = a.Tuple[p]
			}
			rowIdx[k] = len(entries)
			entries = append(entries, rowEntry{key: k, proj: proj, mass: a.Prob})
		}
		for _, e := range entries {
			ans := seen[e.key]
			if ans == nil {
				ans = &spjAnswer{first: i, tuple: e.proj, miss: 1}
				seen[e.key] = ans
				order = append(order, ans)
			}
			ans.miss *= 1 - e.mass
		}
	}

	for i, t := range ex.rel.Tuples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch act := ex.plan.acts[i]; act.tier {
		case tierSkip:
			continue
		case tierCertain:
			foldRow(i, []pdb.Alternative{{Tuple: t, Prob: 1}})
		case tierObserved:
			foldRow(i, act.blk.Alts)
		case tierVote:
			res.Counters.Bounded++
			attr := t.MissingAttrs()[0]
			d, _, err := ex.eng.MarginalCPD(t, attr)
			if err != nil {
				return nil, err
			}
			foldRow(i, distAlts(t, attr, d))
		default: // tierBound, tierDerive (bounds are off: tierBound never occurs)
			res.Counters.Derived++
			res.Counters.BoundWidth += act.iv.Width()
			b, _, err := ex.eng.ResolveBlock(ctx, t)
			if err != nil {
				return nil, err
			}
			foldRow(i, b.Alts)
		}
	}

	rows := make([]Row, 0, len(order))
	for _, a := range order {
		p := 1 - a.miss
		if ex.q.minProb > 0 && p < ex.q.minProb {
			continue
		}
		rows = append(rows, Row{Index: a.first, Tuple: a.tuple, Prob: p, Certain: p >= 1})
	}
	switch ex.q.op {
	case Count:
		if ex.q.minProb > 0 {
			res.Count = int64(len(rows))
		} else {
			for _, r := range rows {
				res.Expected += r.Prob
			}
		}
	default: // TopK
		// rows is in first-appearance order; a stable sort by probability
		// keeps ties in that order, which is (Index asc, block order) —
		// the same tie-break as unprojected topk.
		sort.SliceStable(rows, func(a, b int) bool { return rows[a].Prob > rows[b].Prob })
		if ex.q.k > 0 && len(rows) > ex.q.k {
			rows = rows[:ex.q.k]
		}
		res.Rows = rows
	}
	return res, nil
}

// appendKeyCode appends one value code (possibly Missing) to a map key.
func appendKeyCode(b []byte, v int) []byte {
	u := uint64(v+1) << 1 // shift Missing (-1) to 0; completions are >= 0
	for u >= 0x80 {
		b = append(b, byte(u)|0x80)
		u >>= 7
	}
	return append(b, byte(u))
}
