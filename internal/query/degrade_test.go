package query

import (
	"context"
	"testing"
	"time"

	"repro/internal/derive"
)

// expiredCtx carries a deadline that has already passed: the
// deterministic worst case for the deadline budget — every expensive
// tuple must be answered from bounds, none derived.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	t.Cleanup(cancel)
	return ctx
}

const degradeEps = 1e-9

// requireDegraded asserts the common degradation contract: the flag, the
// tuple count, and the counter partition.
func requireDegraded(t *testing.T, label string, res *Result) {
	t.Helper()
	if !res.Degraded {
		t.Fatalf("%s: not degraded under an expired deadline", label)
	}
	if res.DegradedTuples <= 0 {
		t.Fatalf("%s: degraded without degraded tuples", label)
	}
	c := res.Counters
	if c.Pruned+c.Bounded+c.Derived != c.Scanned {
		t.Fatalf("%s: counters do not partition the scan: %+v", label, c)
	}
}

// TestDegradedBoundsContainOracle is the fail-soft core property: with a
// spent deadline budget, every operator still answers — no error — and
// the reported [lo, hi] bracket contains the exact (derive-everything
// oracle) value, while the point answer sits on the bracket's sound
// lower side.
func TestDegradedBoundsContainOracle(t *testing.T) {
	model, rel := fixture(t, 31)
	items := deriveAll(t, model, rel, engineConfig(2, 4))
	eng, err := derive.New(model, engineConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	preds := []Pred{{Attr: 0, Cmp: Eq, Value: 1}}

	t.Run("count-expected", func(t *testing.T) {
		q, err := Compile(model.Schema, Spec{Op: Count, Preds: preds})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Eval(expiredCtx(t), eng, rel, q)
		if err != nil {
			t.Fatalf("expired deadline failed instead of degrading: %v", err)
		}
		requireDegraded(t, "count", res)
		want, _ := oracleCount(preds, items, 0)
		if res.Bounds == nil {
			t.Fatal("degraded count has no bounds")
		}
		if res.Bounds.Lo > want+degradeEps || res.Bounds.Hi < want-degradeEps {
			t.Fatalf("oracle expected %v outside degraded bounds [%v, %v]", want, res.Bounds.Lo, res.Bounds.Hi)
		}
		if res.Expected != res.Bounds.Lo {
			t.Fatalf("point answer %v is not the bracket's lower side %v", res.Expected, res.Bounds.Lo)
		}
	})

	t.Run("count-thresholded", func(t *testing.T) {
		q, err := Compile(model.Schema, Spec{Op: Count, Preds: preds, MinProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Eval(expiredCtx(t), eng, rel, q)
		if err != nil {
			t.Fatalf("expired deadline failed instead of degrading: %v", err)
		}
		requireDegraded(t, "count-thresholded", res)
		_, want := oracleCount(preds, items, 0.5)
		if res.Bounds == nil {
			t.Fatal("degraded thresholded count has no bounds")
		}
		if float64(want) < res.Bounds.Lo || float64(want) > res.Bounds.Hi {
			t.Fatalf("oracle count %d outside degraded bounds [%v, %v]", want, res.Bounds.Lo, res.Bounds.Hi)
		}
		if float64(res.Count) != res.Bounds.Lo {
			t.Fatalf("point count %d is not the bracket's lower side %v", res.Count, res.Bounds.Lo)
		}
	})

	t.Run("exists", func(t *testing.T) {
		// Predicates no complete tuple satisfies would be ideal, but any
		// certain witness answers exists exactly even when degraded; both
		// outcomes are checked.
		q, err := Compile(model.Schema, Spec{Op: Exists, Preds: preds})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Eval(expiredCtx(t), eng, rel, q)
		if err != nil {
			t.Fatalf("expired deadline failed instead of degrading: %v", err)
		}
		want := oracleExists(preds, items)
		if res.EarlyStop {
			// A certain witness decided it exactly; degradation never ran.
			if res.Prob != 1 || want != 1 {
				t.Fatalf("early-stop exists %v, oracle %v", res.Prob, want)
			}
			return
		}
		requireDegraded(t, "exists", res)
		if res.Bounds == nil {
			t.Fatal("degraded exists has no bounds")
		}
		if res.Bounds.Lo > want+degradeEps || res.Bounds.Hi < want-degradeEps {
			t.Fatalf("oracle P(exists) %v outside degraded bounds [%v, %v]", want, res.Bounds.Lo, res.Bounds.Hi)
		}
		if res.Prob != res.Bounds.Lo {
			t.Fatalf("point probability %v is not the bracket's lower side %v", res.Prob, res.Bounds.Lo)
		}
	})

	t.Run("topk", func(t *testing.T) {
		q, err := Compile(model.Schema, Spec{Op: TopK, Preds: preds, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Eval(expiredCtx(t), eng, rel, q)
		if err != nil {
			t.Fatalf("expired deadline failed instead of degrading: %v", err)
		}
		requireDegraded(t, "topk", res)
		if res.Bounds == nil {
			t.Fatal("degraded topk has no bounds")
		}
		// Every emitted row was resolved exactly: it must appear, with a
		// bit-identical probability, in the oracle's full selection.
		all := oracleTopK(preds, items, 0, 0)
		for _, r := range res.Rows {
			found := false
			for _, o := range all {
				if o.Index == r.Index && o.Prob == r.Prob && o.Tuple.Equal(r.Tuple) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("degraded row %+v not in the oracle selection", r)
			}
		}
		// Any true top-k row the degraded answer missed is capped by the
		// reported upper bound.
		want := oracleTopK(preds, items, 5, 0)
		for _, o := range want {
			found := false
			for _, r := range res.Rows {
				if o.Index == r.Index && o.Prob == r.Prob && o.Tuple.Equal(r.Tuple) {
					found = true
					break
				}
			}
			if !found && o.Prob > res.Bounds.Hi+degradeEps {
				t.Fatalf("missing oracle row with p=%v above degraded cap %v", o.Prob, res.Bounds.Hi)
			}
		}
	})

	t.Run("groupby", func(t *testing.T) {
		g := 1
		q, err := Compile(model.Schema, Spec{Op: GroupBy, Preds: preds, GroupBy: model.Schema.Attrs[g].Name})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Eval(expiredCtx(t), eng, rel, q)
		if err != nil {
			t.Fatalf("expired deadline failed instead of degrading: %v", err)
		}
		requireDegraded(t, "groupby", res)
		want := oracleGroupBy(preds, items, model.Schema, g)
		for v, og := range want {
			gg := res.Groups[v]
			if gg.Lo > og.Expected+degradeEps || gg.Hi < og.Expected-degradeEps {
				t.Fatalf("group %s: oracle %v outside degraded [%v, %v]", og.Label, og.Expected, gg.Lo, gg.Hi)
			}
			if gg.Expected != gg.Lo {
				t.Fatalf("group %s: point %v is not the bracket's lower side %v", og.Label, gg.Expected, gg.Lo)
			}
		}
	})
}

// TestGenerousDeadlineStaysExact pins the other half of the contract: a
// deadline the evaluation comfortably fits inside changes nothing — the
// answer stays bit-identical to the oracle and is never flagged
// degraded, even though the planner computed the extra envelopes.
func TestGenerousDeadlineStaysExact(t *testing.T) {
	model, rel := fixture(t, 32)
	items := deriveAll(t, model, rel, engineConfig(2, 4))
	eng, err := derive.New(model, engineConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	preds := []Pred{{Attr: 0, Cmp: Ne, Value: 0}}
	for _, spec := range []Spec{
		{Op: Count, Preds: preds},
		{Op: Count, Preds: preds, MinProb: 0.4},
		{Op: Exists, Preds: preds, MinProb: 0.99},
		{Op: TopK, Preds: preds, K: 7},
		{Op: GroupBy, Preds: preds, GroupBy: model.Schema.Attrs[0].Name},
	} {
		q, err := Compile(model.Schema, spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Eval(ctx, eng, rel, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || res.DegradedTuples != 0 {
			t.Fatalf("%s: degraded under a generous deadline", q.String())
		}
		checkOracle(t, q.String(), q, res, items, model.Schema)
	}
}
