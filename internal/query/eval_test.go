package query

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/gibbs"
	"repro/internal/relation"
	"repro/internal/vote"
)

func bestAveraged() vote.Method {
	return vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
}

func engineConfig(voteWorkers, gibbsWorkers int) derive.Config {
	return derive.Config{
		Method:       bestAveraged(),
		Gibbs:        gibbs.Config{Samples: 120, BurnIn: 20, Method: bestAveraged(), Seed: 7},
		VoteWorkers:  voteWorkers,
		GibbsWorkers: gibbsWorkers,
	}
}

// fixture learns a model over a catalog network and builds a mixed
// relation of complete, single-missing, and multi-missing tuples with
// repeated damage patterns.
func fixture(t testing.TB, seed int64) (*core.Model, *relation.Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, 6000)
	m, err := core.Learn(train, core.Config{SupportThreshold: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	nAttrs := train.Schema.NumAttrs()
	rel := relation.NewRelation(train.Schema)
	for i := 0; i < 160; i++ {
		tu := inst.Sample(rng)
		switch {
		case i%4 == 1:
			tu[rng.Intn(nAttrs)] = relation.Missing
		case i%4 == 2:
			perm := rng.Perm(nAttrs)
			tu[perm[0]] = relation.Missing
			tu[perm[1]] = relation.Missing
		}
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	return m, rel
}

// deriveAll materializes the full derivation stream of a fresh engine —
// the oracle's input.
func deriveAll(t testing.TB, m *core.Model, rel *relation.Relation, cfg derive.Config) []derive.Item {
	t.Helper()
	eng, err := derive.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var items []derive.Item
	if err := eng.Stream(rel, func(it derive.Item) error {
		items = append(items, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return items
}

// holdsAll evaluates the raw predicates on a complete tuple — on purpose
// independent of the compiled satisfying sets, so the oracle also checks
// compilation.
func holdsAll(preds []Pred, u relation.Tuple) bool {
	for _, p := range preds {
		if !p.Cmp.holds(u[p.Attr], p.Value) {
			return false
		}
	}
	return true
}

// naiveProb is the oracle's per-item satisfaction probability: evidence
// for certain items, the plain sum over satisfying alternatives (in
// block order) for blocks.
func naiveProb(preds []Pred, it derive.Item) float64 {
	if it.Certain() {
		if holdsAll(preds, it.Tuple) {
			return 1
		}
		return 0
	}
	var s float64
	for _, a := range it.Block.Alts {
		if holdsAll(preds, a.Tuple) {
			s += a.Prob
		}
	}
	return s
}

// oracleCount folds the naive expected count (or thresholded count) over
// the full stream, in input order.
func oracleCount(preds []Pred, items []derive.Item, minProb float64) (expected float64, count int64) {
	for _, it := range items {
		p := naiveProb(preds, it)
		if minProb > 0 {
			if p >= minProb {
				count++
			}
		} else {
			expected += p
		}
	}
	return expected, count
}

// oracleExists folds 1 - prod(1 - p) over the full stream.
func oracleExists(preds []Pred, items []derive.Item) float64 {
	miss := 1.0
	for _, it := range items {
		miss *= 1 - naiveProb(preds, it)
	}
	return 1 - miss
}

// oracleTopK is the naive selection: every satisfying row in stream
// order, stable-sorted by descending probability, thresholded and cut.
func oracleTopK(preds []Pred, items []derive.Item, k int, minProb float64) []Row {
	var rows []Row
	add := func(r Row) {
		if minProb > 0 && r.Prob < minProb {
			return
		}
		rows = append(rows, r)
	}
	for _, it := range items {
		if it.Certain() {
			if holdsAll(preds, it.Tuple) {
				add(Row{Index: it.Index, Tuple: it.Tuple, Prob: 1, Certain: true})
			}
			continue
		}
		for _, a := range it.Block.Alts {
			if holdsAll(preds, a.Tuple) {
				add(Row{Index: it.Index, Tuple: a.Tuple, Prob: a.Prob})
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Prob > rows[j].Prob })
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// oracleGroupBy folds the naive satisfying-mass histogram of attribute g.
func oracleGroupBy(preds []Pred, items []derive.Item, s *relation.Schema, g int) []Group {
	card := s.Attrs[g].Card()
	groups := make([]Group, card)
	for v := range groups {
		groups[v] = Group{Value: v, Label: s.Attrs[g].Domain[v]}
	}
	perValue := make([]float64, card)
	for _, it := range items {
		if it.Certain() {
			if holdsAll(preds, it.Tuple) {
				groups[it.Tuple[g]].Expected++
			}
			continue
		}
		for v := range perValue {
			perValue[v] = 0
		}
		for _, a := range it.Block.Alts {
			if holdsAll(preds, a.Tuple) {
				perValue[a.Tuple[g]] += a.Prob
			}
		}
		for v, p := range perValue {
			groups[v].Expected += p
			groups[v].Variance += p * (1 - p)
		}
	}
	return groups
}

// randomSpec draws a query with 1-2 random predicates.
func randomSpec(rng *rand.Rand, s *relation.Schema, op Op) Spec {
	n := 1 + rng.Intn(2)
	preds := make([]Pred, 0, n)
	for i := 0; i < n; i++ {
		attr := rng.Intn(s.NumAttrs())
		preds = append(preds, Pred{
			Attr:  attr,
			Cmp:   Cmp(rng.Intn(6)),
			Value: rng.Intn(s.Attrs[attr].Card()),
		})
	}
	spec := Spec{Op: op, Preds: preds}
	if op == TopK {
		// k <= 0 keeps every row (and prefetches its worklist instead of
		// terminating early) — exercised alongside bounded ks.
		spec.K = rng.Intn(9)
	}
	if op == GroupBy {
		spec.GroupBy = s.Attrs[rng.Intn(s.NumAttrs())].Name
	}
	if op != GroupBy && rng.Intn(2) == 0 {
		spec.MinProb = rng.Float64()
	}
	return spec
}

func requireRowsEqual(t *testing.T, label string, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Prob != want[i].Prob || got[i].Index != want[i].Index ||
			got[i].Certain != want[i].Certain || !got[i].Tuple.Equal(want[i].Tuple) {
			t.Fatalf("%s: row %d = %+v, want bit-identical %+v", label, i, got[i], want[i])
		}
	}
}

func requireGroupsEqual(t *testing.T, label string, got, want []Group) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: group %d = %+v, want bit-identical %+v", label, i, got[i], want[i])
		}
	}
}

// checkOracle compares one evaluation against the naive full-derivation
// oracle, demanding bit identity.
func checkOracle(t *testing.T, label string, q *Query, res *Result, items []derive.Item, s *relation.Schema) {
	t.Helper()
	preds := q.preds
	switch q.op {
	case Count:
		expected, count := oracleCount(preds, items, q.minProb)
		if res.Expected != expected || res.Count != count {
			t.Fatalf("%s: count = (%v, %d), want bit-identical (%v, %d)",
				label, res.Expected, res.Count, expected, count)
		}
	case Exists:
		prob := oracleExists(preds, items)
		wantExists := prob > 0
		if q.minProb > 0 {
			wantExists = prob >= q.minProb
		}
		if res.Exists != wantExists {
			t.Fatalf("%s: exists = %v (P=%v), oracle %v (P=%v)",
				label, res.Exists, res.Prob, wantExists, prob)
		}
		// The probability is bit-identical whenever evaluation ran to
		// completion; an early stop under a threshold yields a sound
		// lower bound instead.
		if !res.EarlyStop && res.Prob != prob {
			t.Fatalf("%s: P(exists) = %v, want bit-identical %v", label, res.Prob, prob)
		}
		if res.EarlyStop && q.minProb > 0 && res.Prob > prob {
			t.Fatalf("%s: early-stop bound %v exceeds exact %v", label, res.Prob, prob)
		}
	case TopK:
		requireRowsEqual(t, label, res.Rows, oracleTopK(preds, items, q.k, q.minProb))
	case GroupBy:
		requireGroupsEqual(t, label, res.Groups, oracleGroupBy(preds, items, s, q.groupAttr))
	}
	c := res.Counters
	if c.Scanned != int64(len(items)) || c.Pruned+c.Bounded+c.Derived != c.Scanned {
		t.Fatalf("%s: counters do not partition the scan: %+v", label, c)
	}
}

// TestEvalMatchesOracle is the subsystem's core property: for randomized
// models, relations, and queries across every operator — with and
// without probability thresholds — evaluation through the engine is
// bit-identical to deriving the full database and evaluating naively,
// at every worker count (chains mode; pool sizes never change answers).
func TestEvalMatchesOracle(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{11, 12, 13} {
		model, rel := fixture(t, seed)
		items := deriveAll(t, model, rel, engineConfig(4, 4))

		var engines []*derive.Engine
		for _, w := range [][2]int{{1, 2}, {2, 4}, {8, 8}} {
			eng, err := derive.New(model, engineConfig(w[0], w[1]))
			if err != nil {
				t.Fatal(err)
			}
			engines = append(engines, eng)
		}

		rng := rand.New(rand.NewSource(seed * 101))
		for _, op := range []Op{Count, Exists, TopK, GroupBy} {
			for round := 0; round < 4; round++ {
				spec := randomSpec(rng, model.Schema, op)
				q, err := Compile(model.Schema, spec)
				if err != nil {
					t.Fatal(err)
				}
				for wi, eng := range engines {
					res, err := Eval(ctx, eng, rel, q)
					if err != nil {
						t.Fatalf("%v round %d workers %d: %v", op, round, wi, err)
					}
					checkOracle(t, q.String(), q, res, items, model.Schema)
				}
			}
		}

		// The engines recorded every evaluation.
		st := engines[0].Stats()
		if st.Queries == 0 || st.QueryTuples != st.Queries*int64(rel.Len()) {
			t.Errorf("engine stats did not record queries: %+v", st)
		}
		if tight := st.QueryBoundTightness(); tight < 0 || tight > 1 {
			t.Errorf("bound tightness %v outside [0,1]", tight)
		}
	}
}

// TestThresholdTouchesTupleProbability pins the edge where a bound
// exactly equals the decision threshold: a tuple with satisfaction
// probability p counts against MinProb == p (>=, not >), identically in
// the evaluator and the oracle.
func TestThresholdTouchesTupleProbability(t *testing.T) {
	model, rel := fixture(t, 21)
	items := deriveAll(t, model, rel, engineConfig(4, 4))
	preds := []Pred{{Attr: 0, Cmp: Eq, Value: 1}}

	// Find an inferred, strictly fractional tuple probability.
	var touch float64
	for _, it := range items {
		if p := naiveProb(preds, it); p > 0 && p < 1 {
			touch = p
			break
		}
	}
	if touch == 0 {
		t.Fatal("fixture has no fractional tuple probability")
	}

	eng, err := derive.New(model, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(model.Schema, Spec{Op: Count, Preds: preds, MinProb: touch})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	_, want := oracleCount(preds, items, touch)
	if res.Count != want {
		t.Fatalf("count at touching threshold %v: %d, want %d", touch, res.Count, want)
	}
	if want == 0 {
		t.Fatal("touching threshold excluded the touching tuple")
	}

	// Exists at a threshold exactly equal to the full existence
	// probability still answers yes.
	full := oracleExists(preds, items)
	q, err = Compile(model.Schema, Spec{Op: Exists, Preds: preds, MinProb: full})
	if err != nil {
		t.Fatal(err)
	}
	res, err = Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists {
		t.Fatalf("exists at touching threshold %v answered no", full)
	}
}

// TestSelectiveQueriesPrune is the subsystem's reason to exist: selective
// exists and topk queries must derive strictly fewer blocks than full
// derivation while still answering exactly.
func TestSelectiveQueriesPrune(t *testing.T) {
	model, rel := fixture(t, 31)
	items := deriveAll(t, model, rel, engineConfig(4, 4))
	var incomplete int64
	for _, tu := range rel.Tuples {
		if !tu.IsComplete() {
			incomplete++
		}
	}
	if incomplete == 0 {
		t.Fatal("fixture has no incomplete tuples")
	}

	// An exists query with a certain witness in the data: answered with
	// zero inference.
	var witness relation.Tuple
	for _, tu := range rel.Tuples {
		if tu.IsComplete() {
			witness = tu
			break
		}
	}
	preds := []Pred{
		{Attr: 0, Cmp: Eq, Value: witness[0]},
		{Attr: 1, Cmp: Eq, Value: witness[1]},
	}
	eng, err := derive.New(model, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(model.Schema, Spec{Op: Exists, Preds: preds})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists || res.Prob != 1 || !res.EarlyStop {
		t.Fatalf("certain witness not detected: %+v", res)
	}
	if res.Counters.Derived != 0 || res.Counters.Bounded != 0 {
		t.Fatalf("certain witness still paid for inference: %+v", res.Counters)
	}
	if oracleExists(preds, items) != 1 {
		t.Fatal("oracle disagrees with the certain witness")
	}

	// A selective topk query: refuted tuples are never derived.
	q, err = Compile(model.Schema, Spec{Op: TopK, Preds: preds, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err = Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "selective topk", res.Rows, oracleTopK(preds, items, 3, 0))
	if res.Counters.Pruned == 0 {
		t.Fatalf("selective topk pruned nothing: %+v", res.Counters)
	}
	if res.Counters.Derived >= incomplete {
		t.Fatalf("topk derived %d of %d incomplete tuples — no better than full derivation",
			res.Counters.Derived, incomplete)
	}

	st := eng.Stats()
	if st.QueryPruned == 0 || st.Queries != 2 {
		t.Errorf("engine stats did not record the pruning: %+v", st)
	}
}

// TestCappedEngineFallsBackToDerivation: with a block-alternative cap the
// marginal CPD no longer equals the (renormalized) block, so bound-based
// pruning must be disabled — and answers must still match the naive
// oracle over the capped stream.
func TestCappedEngineFallsBackToDerivation(t *testing.T) {
	model, rel := fixture(t, 41)
	cfg := engineConfig(4, 4)
	cfg.MaxAlternatives = 2
	items := deriveAll(t, model, rel, cfg)

	eng, err := derive.New(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds := []Pred{{Attr: 0, Cmp: Ge, Value: 1}}
	q, err := Compile(model.Schema, Spec{Op: Count, Preds: preds})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Bounded != 0 {
		t.Fatalf("capped engine still used CPD bounds: %+v", res.Counters)
	}
	expected, _ := oracleCount(preds, items, 0)
	if res.Expected != expected {
		t.Fatalf("capped count = %v, want bit-identical %v", res.Expected, expected)
	}
}

// rareValues finds, for two distinct attributes, the value with the
// smallest positive frequency in a reference sample — the most selective
// equality predicates the fixture supports.
func rareValues(t *testing.T, inst *bn.Instance, rng *rand.Rand, s *relation.Schema) (a1, v1, a2, v2 int) {
	t.Helper()
	n := s.NumAttrs()
	freq := make([][]int, n)
	for a := range freq {
		freq[a] = make([]int, s.Attrs[a].Card())
	}
	for i := 0; i < 2000; i++ {
		tu := inst.Sample(rng)
		for a, v := range tu {
			freq[a][v]++
		}
	}
	type rare struct{ attr, val, count int }
	best := make([]rare, 0, n)
	for a := range freq {
		r := rare{attr: a, val: 0, count: freq[a][0]}
		for v, c := range freq[a] {
			if c > 0 && (freq[a][r.val] == 0 || c < r.count) {
				r.val, r.count = v, c
			}
		}
		best = append(best, r)
	}
	sort.Slice(best, func(i, j int) bool { return best[i].count < best[j].count })
	return best[0].attr, best[0].val, best[1].attr, best[1].val
}

// TestBoundsPruneMultiMissing is the bound engine's acceptance bar: on a
// multi-missing-heavy workload with enough samples for tight intervals,
// a selective thresholded count decides at least half its multi-missing
// tuples from dissociation bounds alone (PR 4 derived every one), and a
// thresholded exists crosses its threshold on the derivation-free
// lower-bound pass without sampling a single chain — both bit-identical
// to the derive-everything oracle.
func TestBoundsPruneMultiMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, 6000)
	model, err := core.Learn(train, core.Config{SupportThreshold: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	s := model.Schema
	a1, v1, a2, v2 := rareValues(t, inst, rng, s)

	cfg := derive.Config{
		Method:       bestAveraged(),
		Gibbs:        gibbs.Config{Samples: 800, BurnIn: 50, Method: bestAveraged(), Seed: 7},
		VoteWorkers:  2,
		GibbsWorkers: 4,
	}

	// A multi-missing-heavy relation: half the tuples miss both predicate
	// attributes (sometimes a third), drawn from a limited pattern pool so
	// the oracle derivation stays cheap.
	nAttrs := s.NumAttrs()
	patterns := make([]relation.Tuple, 12)
	for i := range patterns {
		tu := inst.Sample(rng)
		tu[a1], tu[a2] = relation.Missing, relation.Missing
		if i%3 == 0 {
			for _, a := range rng.Perm(nAttrs) {
				if a != a1 && a != a2 {
					tu[a] = relation.Missing
					break
				}
			}
		}
		patterns[i] = tu
	}
	rel := relation.NewRelation(s)
	for i := 0; i < 160; i++ {
		var tu relation.Tuple
		if i%2 == 0 {
			tu = inst.Sample(rng)
		} else {
			tu = patterns[rng.Intn(len(patterns))].Clone()
		}
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	items := deriveAll(t, model, rel, cfg)

	// Selective thresholded count: every multi-missing tuple's interval
	// should fall cleanly below the threshold.
	preds := []Pred{{Attr: a1, Cmp: Eq, Value: v1}, {Attr: a2, Cmp: Eq, Value: v2}}
	q, err := Compile(s, Spec{Op: Count, Preds: preds, MinProb: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := derive.New(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	checkOracle(t, "bounded count", q, res, items, s)
	var multiOpen int64
	for _, tu := range rel.Tuples {
		if c, _ := q.classify(tu, nil); c == openMulti {
			multiOpen++
		}
	}
	if multiOpen < 20 {
		t.Fatalf("fixture is not multi-missing-heavy: %d open multi tuples", multiOpen)
	}
	if res.Counters.Derived*2 > multiOpen {
		t.Fatalf("bounds decided too little: derived %d of %d open multi-missing tuples (PR 4 derived all)",
			res.Counters.Derived, multiOpen)
	}
	if res.Counters.BoundRefutes == 0 {
		t.Fatalf("no tuple was refuted by its upper bound: %+v", res.Counters)
	}
	if res.Plan == nil || res.Plan.Bounded == 0 {
		t.Fatalf("plan did not record bound-tier tuples: %+v", res.Plan)
	}

	// Thresholded exists over an all-incomplete relation (no certain
	// witness): the lower-bound pass alone must cross the threshold.
	rel2 := relation.NewRelation(s)
	for i := 0; i < 60; i++ {
		if err := rel2.Append(patterns[i%len(patterns)].Clone()); err != nil {
			t.Fatal(err)
		}
	}
	items2 := deriveAll(t, model, rel2, cfg)
	q2, err := Compile(s, Spec{Op: Exists, Preds: []Pred{{Attr: a1, Cmp: Ne, Value: v1}}, MinProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Eval(context.Background(), eng, rel2, q2)
	if err != nil {
		t.Fatal(err)
	}
	checkOracle(t, "bounded exists", q2, res2, items2, s)
	if !res2.Exists || !res2.EarlyStop {
		t.Fatalf("exists did not decide early: %+v", res2)
	}
	if res2.Counters.Derived != 0 {
		t.Fatalf("exists lower-bound pass still derived %d tuples", res2.Counters.Derived)
	}

	st := eng.Stats()
	if st.BoundsComputed == 0 || st.BoundRefutes == 0 {
		t.Fatalf("engine stats did not record bound work: %+v", st)
	}
}

// TestPlanInfo pins the planner's public summary: tier counts partition
// the scan, and the predicate order is sorted by estimated selectivity.
func TestPlanInfo(t *testing.T) {
	model, rel := fixture(t, 61)
	eng, err := derive.New(model, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(model.Schema, Spec{
		Op:      Count,
		Preds:   []Pred{{Attr: 0, Cmp: Ge, Value: 1}, {Attr: 1, Cmp: Eq, Value: 0}},
		MinProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Plan
	if p == nil {
		t.Fatal("no plan attached to the result")
	}
	if got := p.Refuted + p.Certain + p.SingleMissing + p.Bounded + p.Derive; got != rel.Len() {
		t.Fatalf("plan tiers cover %d of %d tuples: %+v", got, rel.Len(), p)
	}
	if len(p.PredOrder) != 2 || len(p.Selectivity) != 2 {
		t.Fatalf("plan predicate order incomplete: %+v", p)
	}
	if p.Selectivity[0] > p.Selectivity[1] {
		t.Fatalf("predicates not ordered by selectivity: %+v", p)
	}
	if !p.BoundsUsed {
		t.Fatalf("thresholded count should plan with bounds: %+v", p)
	}
	if s := p.String(); !strings.Contains(s, "tiers:") || !strings.Contains(s, "predicate order:") {
		t.Fatalf("explain rendering incomplete:\n%s", s)
	}

	// The same query without a threshold cannot use bounds.
	q2, err := Compile(model.Schema, Spec{Op: Count, Preds: q.preds})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Eval(context.Background(), eng, rel, q2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Plan.BoundsUsed || res2.Plan.Bounded != 0 {
		t.Fatalf("expected-count plan should not use bounds: %+v", res2.Plan)
	}
}

// TestTopKCertainCutSkipsCheapTiers: once k certain rows fill the cut,
// trailing single-missing tuples must cost nothing — the pre-planner
// evaluator's early stop, which the tiered executor must preserve.
func TestTopKCertainCutSkipsCheapTiers(t *testing.T) {
	model, _ := fixture(t, 91)
	rng := rand.New(rand.NewSource(93))
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	rel := relation.NewRelation(model.Schema)
	w := inst.Sample(rng)
	for i := 0; i < 2; i++ { // two certain witnesses up front
		if err := rel.Append(w.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ { // trailing single-missing tuples
		tu := w.Clone()
		tu[1+i%3] = relation.Missing
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := derive.New(model, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(model.Schema, Spec{Op: TopK, Preds: []Pred{{Attr: 0, Cmp: Eq, Value: w[0]}}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || !res.Rows[0].Certain || !res.Rows[1].Certain || !res.EarlyStop {
		t.Fatalf("certain cut not taken: %+v", res)
	}
	if res.Counters.Bounded != 0 || res.Counters.Derived != 0 {
		t.Fatalf("trailing single-missing tuples still paid for inference: %+v", res.Counters)
	}
}

// TestCappedTopKTieAtProbabilityOne: on an alternative-capped engine a
// renormalized block holds a completion with probability exactly 1 —
// the vacuous upper bound is attainable. The rank-k cut must not skip a
// candidate from an earlier input index whose tied completion wins the
// (probability, input order) tie-break against a held certain row.
func TestCappedTopKTieAtProbabilityOne(t *testing.T) {
	model, _ := fixture(t, 81)
	cfg := engineConfig(2, 2)
	cfg.MaxAlternatives = 1

	rng := rand.New(rand.NewSource(83))
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := inst.Sample(rng)
	open := w.Clone()
	open[1] = relation.Missing // unconstrained attribute: the tuple satisfies via every completion
	rel := relation.NewRelation(model.Schema)
	for _, tu := range []relation.Tuple{open, w} {
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	items := deriveAll(t, model, rel, cfg)

	eng, err := derive.New(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(model.Schema, Spec{Op: TopK, Preds: []Pred{{Attr: 0, Cmp: Eq, Value: w[0]}}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "capped topk tie", res.Rows, oracleTopK(q.preds, items, 1, 0))
	if len(res.Rows) != 1 || res.Rows[0].Index != 0 {
		t.Fatalf("rank-1 row is %+v; the probability-1 completion at input index 0 must win the tie", res.Rows)
	}
}

// TestEvalValidation covers the evaluator's own error paths.
func TestEvalValidation(t *testing.T) {
	model, rel := fixture(t, 51)
	eng, err := derive.New(model, engineConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(model.Schema, Spec{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Eq, Value: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(context.Background(), nil, rel, q); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := Eval(context.Background(), eng, nil, q); err == nil {
		t.Error("nil relation should fail")
	}
	if _, err := Eval(context.Background(), eng, rel, nil); err == nil {
		t.Error("nil query should fail")
	}

	other := relation.NewRelation(relation.MustSchema([]relation.Attribute{
		{Name: "z", Domain: []string{"0", "1"}},
	}))
	if _, err := Eval(context.Background(), eng, other, q); err == nil {
		t.Error("schema mismatch should fail")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Eval(ctx, eng, rel, q); err != context.Canceled {
		t.Errorf("canceled context: err = %v, want context.Canceled", err)
	}
}
