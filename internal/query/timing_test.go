package query

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/derive"
	"repro/internal/obs"
)

// TestAnalyzeTimingAttached: Spec.Analyze attaches a PlanInfo.Timing
// block whose stages account for the evaluation — on an inference-heavy
// workload (a cold engine deriving every open tuple) the plan stage plus
// the per-tier durations sum to within 20% of the measured wall time.
func TestAnalyzeTimingAttached(t *testing.T) {
	m, rel := fixture(t, 31)
	eng, err := derive.New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(m.Schema, Spec{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Ge, Value: 0}}, Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Plan.Timing
	if tm == nil {
		t.Fatal("Analyze did not attach Plan.Timing")
	}
	if tm.WallMS <= 0 {
		t.Fatalf("WallMS = %v, want > 0", tm.WallMS)
	}
	if len(tm.Tiers) == 0 {
		t.Fatal("no tier timings on a mixed relation")
	}
	var tuples, covered = int64(0), tm.PlanMS
	seen := map[string]bool{}
	for _, tr := range tm.Tiers {
		if tr.Tuples <= 0 || tr.DurationMS < 0 {
			t.Errorf("tier %s: tuples=%d duration=%v", tr.Tier, tr.Tuples, tr.DurationMS)
		}
		if seen[tr.Tier] {
			t.Errorf("tier %s appears twice", tr.Tier)
		}
		seen[tr.Tier] = true
		covered += tr.DurationMS
		if tr.Tier != "prefetch" { // prefetch hands off tuples also counted at resolution
			tuples += tr.Tuples
		}
	}
	if !seen["prefetch"] || !seen["vote"] || !seen["derive"] {
		t.Errorf("missing expected tiers in %v", tm.Tiers)
	}
	c := res.Counters
	if want := c.Bounded + c.Derived; tuples != want {
		t.Errorf("timed resolution tuples = %d, counters say %d", tuples, want)
	}
	if covered < 0.8*tm.WallMS {
		t.Errorf("stages cover %.3fms of %.3fms wall (< 80%%)", covered, tm.WallMS)
	}
	if covered > 1.05*tm.WallMS {
		t.Errorf("stages cover %.3fms, exceeding %.3fms wall", covered, tm.WallMS)
	}
	if !strings.Contains(res.Plan.String(), "timing: plan ") {
		t.Errorf("PlanInfo.String() lacks timing block:\n%s", res.Plan.String())
	}
}

// TestTimingOffByDefault: without Analyze (and without a trace), no
// timing block is attached — the summary stays byte-identical to the
// pre-observability plan output.
func TestTimingOffByDefault(t *testing.T) {
	m, rel := fixture(t, 31)
	eng, err := derive.New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(m.Schema, Spec{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Ge, Value: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Timing != nil {
		t.Fatal("Timing attached without Analyze")
	}
	if strings.Contains(res.Plan.String(), "timing:") {
		t.Error("plan summary mentions timing without Analyze")
	}
}

// TestTraceEnablesTimingAndRecordsSpans: a Trace on the context turns
// timing on even without Analyze, and the per-stage spans mirror into
// the recorder, ending with query.wall.
func TestTraceEnablesTimingAndRecordsSpans(t *testing.T) {
	m, rel := fixture(t, 31)
	eng, err := derive.New(m, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(m.Schema, Spec{Op: Exists, Preds: []Pred{{Attr: 0, Cmp: Ge, Value: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	res, err := Eval(obs.WithTrace(context.Background(), tr), eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Timing == nil {
		t.Fatal("trace on context did not enable timing")
	}
	spans := tr.Spans()
	if len(spans) < 2 {
		t.Fatalf("recorded %d spans, want >= 2", len(spans))
	}
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
	}
	for _, want := range []string{"query.plan", "query.wall"} {
		if !names[want] {
			t.Errorf("missing span %q in %v", want, spans)
		}
	}
}

// TestAnalyzeNeverChangesAnswers: the bit-identity property — for random
// specs across every operator, evaluating with Analyze (or a context
// trace) returns exactly the same answer, rows, groups, and counters as
// evaluating without. Timing only observes.
func TestAnalyzeNeverChangesAnswers(t *testing.T) {
	m, rel := fixture(t, 31)
	rng := rand.New(rand.NewSource(99))
	for _, op := range []Op{Count, Exists, TopK, GroupBy} {
		for trial := 0; trial < 3; trial++ {
			spec := randomSpec(rng, m.Schema, op)

			eval := func(analyze, traced bool) *Result {
				t.Helper()
				s := spec
				s.Analyze = analyze
				q, err := Compile(m.Schema, s)
				if err != nil {
					t.Fatal(err)
				}
				// Fresh engine per run: identical cold-cache estimator state.
				eng, err := derive.New(m, engineConfig(2, 2))
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				if traced {
					ctx = obs.WithTrace(ctx, obs.NewTrace())
				}
				res, err := Eval(ctx, eng, rel, q)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}

			base := eval(false, false)
			for name, got := range map[string]*Result{
				"analyze": eval(true, false),
				"traced":  eval(false, true),
			} {
				if got.Plan.Timing == nil {
					t.Fatalf("%v/%s: timing expected on", op, name)
				}
				// Strip the observability-only fields before comparing.
				a, b := *base, *got
				a.Plan, b.Plan = nil, nil
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%v/%s: answer changed with timing on\nbase: %+v\ngot:  %+v", op, name, a, b)
				}
				if math.Float64bits(base.Expected) != math.Float64bits(got.Expected) ||
					math.Float64bits(base.Prob) != math.Float64bits(got.Prob) {
					t.Errorf("%v/%s: scalar answers not bit-identical", op, name)
				}
			}
		}
	}
}
