package query

import (
	"reflect"
	"testing"

	"repro/internal/relation"
)

// FuzzParseQuery guards the predicate parser — external input on both
// the mrslquery CLI (-where) and the mrslserve /query endpoint — against
// panics, and checks that anything it accepts is valid against the
// schema, deterministic, and compilable.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"age=30",
		"age=30,inc>=100K",
		"inc!=50K",
		"age<40",
		"age<=20",
		"inc>50K",
		"age>20,age<40",
		" age = 30 , inc = 50K ",
		"age=30,age!=30",   // contradictory but well-formed
		"edu=MS,edu=MS",    // duplicate condition
		"",                 // empty clause
		",",                // empty condition
		"age=30,",          // trailing comma: empty second clause
		"age=30,,inc=50K",  // empty middle clause
		",age=30",          // leading comma
		"age=30, ,inc=50K", // whitespace-only clause
		"age",              // no operator
		"age=",             // no value
		"=30",              // no attribute
		"age==30",          // double operator: label "=30" is out of domain
		"age<>30",          // "<" with label ">30"
		"bogus=30",         // unknown attribute
		"age=99",           // out-of-domain label
		"age\x00=30",       // control bytes in the attribute
		"年齢=30",            // non-ASCII attribute
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "age", Domain: []string{"20", "30", "40"}},
		{Name: "inc", Domain: []string{"50K", "100K"}},
		{Name: "edu", Domain: []string{"HS", "BS", "MS"}},
	})
	f.Fuzz(func(t *testing.T, where string) {
		preds, err := ParseWhere(schema, where)
		again, err2 := ParseWhere(schema, where)
		if (err == nil) != (err2 == nil) || !reflect.DeepEqual(preds, again) {
			t.Fatalf("ParseWhere is not deterministic on %q: (%v, %v) vs (%v, %v)",
				where, preds, err, again, err2)
		}
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if len(preds) == 0 {
			t.Fatalf("ParseWhere(%q) accepted an empty conjunction", where)
		}
		for _, p := range preds {
			if p.Attr < 0 || p.Attr >= schema.NumAttrs() {
				t.Fatalf("ParseWhere(%q) produced out-of-range attribute %d", where, p.Attr)
			}
			if p.Value < 0 || p.Value >= schema.Attrs[p.Attr].Card() {
				t.Fatalf("ParseWhere(%q) produced out-of-range value %d", where, p.Value)
			}
		}
		// Every accepted conjunction compiles (possibly to an empty
		// satisfying set — a query that is simply always false).
		q, err := Compile(schema, Spec{Op: Count, Preds: preds})
		if err != nil {
			t.Fatalf("accepted predicates %v fail to compile: %v", preds, err)
		}
		_ = q.String()
	})
}
