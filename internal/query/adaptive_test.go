package query

// Tests for the adaptive execution layer: bit-identity of adaptive
// evaluation against the static planner and the derive-everything
// oracle, envelope sharing across queries (including on an
// always-evicting engine), the exists collective-refute re-plan round,
// and the pooled plan path's allocation budget.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/derive"
	"repro/internal/relation"
)

// compileBoth compiles spec twice: adaptive (as given) and static.
func compileBoth(t *testing.T, s *relation.Schema, spec Spec) (adaptive, static *Query) {
	t.Helper()
	q, err := Compile(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Static = true
	qs, err := Compile(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	return q, qs
}

// requireSameAnswer demands the adaptive and static evaluations agree on
// the operator's answer. Scalar answers and rows are bit-identical; the
// one sanctioned divergence is a thresholded exists that early-stopped
// in either mode, whose reported probability is a sound lower bound
// rather than the exact mass (checkOracle pins the soundness side).
func requireSameAnswer(t *testing.T, label string, q *Query, got, want *Result) {
	t.Helper()
	switch q.op {
	case Count:
		if got.Expected != want.Expected || got.Count != want.Count {
			t.Fatalf("%s: adaptive count (%v, %d) != static (%v, %d)",
				label, got.Expected, got.Count, want.Expected, want.Count)
		}
	case Exists:
		if got.Exists != want.Exists {
			t.Fatalf("%s: adaptive exists %v != static %v", label, got.Exists, want.Exists)
		}
		if !got.EarlyStop && !want.EarlyStop && got.Prob != want.Prob {
			t.Fatalf("%s: adaptive P %v != static %v", label, got.Prob, want.Prob)
		}
	case TopK:
		requireRowsEqual(t, label, got.Rows, want.Rows)
	case GroupBy:
		requireGroupsEqual(t, label, got.Groups, want.Groups)
	}
}

// TestAdaptiveMatchesStaticAndOracle is the adaptive layer's core
// property: across every operator, randomized thresholds, and worker
// counts {1, 2, 8}, evaluation with re-planning, the cost model, and
// shared envelopes enabled is bit-identical to the static planner and
// to the naive full-derivation oracle — including on an always-evicting
// CacheEntries=1 engine, where every shared-envelope entry is under
// eviction pressure.
func TestAdaptiveMatchesStaticAndOracle(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{17, 18} {
		model, rel := fixture(t, seed)
		items := deriveAll(t, model, rel, engineConfig(4, 4))

		type engPair struct {
			label             string
			adaptive, static_ *derive.Engine
		}
		var engines []engPair
		for _, w := range [][2]int{{1, 1}, {2, 2}, {8, 8}} {
			a, err := derive.New(model, engineConfig(w[0], w[1]))
			if err != nil {
				t.Fatal(err)
			}
			s, err := derive.New(model, engineConfig(w[0], w[1]))
			if err != nil {
				t.Fatal(err)
			}
			engines = append(engines, engPair{label: "workers", adaptive: a, static_: s})
		}
		thrashCfg := engineConfig(2, 2)
		thrashCfg.CacheEntries = 1
		a, err := derive.New(model, thrashCfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := derive.New(model, thrashCfg)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, engPair{label: "thrash", adaptive: a, static_: s})

		rng := rand.New(rand.NewSource(seed * 131))
		for _, op := range []Op{Count, Exists, TopK, GroupBy} {
			for round := 0; round < 3; round++ {
				spec := randomSpec(rng, model.Schema, op)
				q, qs := compileBoth(t, model.Schema, spec)
				for _, pair := range engines {
					res, err := Eval(ctx, pair.adaptive, rel, q)
					if err != nil {
						t.Fatalf("%s adaptive %v: %v", pair.label, op, err)
					}
					want, err := Eval(ctx, pair.static_, rel, qs)
					if err != nil {
						t.Fatalf("%s static %v: %v", pair.label, op, err)
					}
					if want.Plan.Adaptive != nil {
						t.Fatalf("%s: static plan carries an adaptive block", pair.label)
					}
					checkOracle(t, "adaptive "+q.String(), q, res, items, model.Schema)
					checkOracle(t, "static "+q.String(), qs, want, items, model.Schema)
					requireSameAnswer(t, pair.label+" "+q.String(), q, res, want)
				}
			}
		}
	}
}

// TestAdaptiveDegradedStaysSound exercises the adaptive layer under a
// spent deadline budget: both modes answer without error, and whatever
// the adaptive machinery decides — degrade to an interval, or decide
// early from bounds before the budget matters — stays sound against
// the oracle.
func TestAdaptiveDegradedStaysSound(t *testing.T) {
	model, rel := fixture(t, 23)
	items := deriveAll(t, model, rel, engineConfig(4, 4))

	for _, spec := range []Spec{
		{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Le, Value: 1}}},
		{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Le, Value: 1}}, MinProb: 0.5},
		{Op: Exists, Preds: []Pred{{Attr: 1, Cmp: Eq, Value: 0}}, MinProb: 0.97},
	} {
		q, qs := compileBoth(t, model.Schema, spec)
		for _, query := range []*Query{q, qs} {
			eng, err := derive.New(model, engineConfig(2, 2))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Eval(expiredCtx(t), eng, rel, query)
			if err != nil {
				t.Fatalf("degraded %s: %v", query.String(), err)
			}
			if !res.Degraded {
				// The adaptive exists refute may decide before the budget is
				// consulted; then the answer must be exactly oracle-correct.
				checkOracle(t, "budget-free "+query.String(), query, res, items, model.Schema)
				continue
			}
			if res.Bounds == nil {
				t.Fatalf("degraded %s without bounds", query.String())
			}
			switch spec.Op {
			case Count:
				expected, n := oracleCount(query.preds, items, spec.MinProb)
				if spec.MinProb > 0 {
					expected = float64(n)
				}
				if expected < res.Bounds.Lo-degradeEps || expected > res.Bounds.Hi+degradeEps {
					t.Fatalf("degraded %s: oracle %v outside bounds [%v, %v]",
						query.String(), expected, res.Bounds.Lo, res.Bounds.Hi)
				}
			case Exists:
				prob := oracleExists(query.preds, items)
				if prob < res.Bounds.Lo-degradeEps || prob > res.Bounds.Hi+degradeEps {
					t.Fatalf("degraded %s: oracle %v outside bounds [%v, %v]",
						query.String(), prob, res.Bounds.Lo, res.Bounds.Hi)
				}
			}
		}
	}
}

// TestEnvelopeSharingAcrossQueries pins the cross-query envelope cache:
// the first bounded evaluation misses and populates the shared interval
// cache, the second — same predicates, fresh compiled query — serves its
// multi-missing envelopes from it, visible on PlanInfo.Adaptive and in
// the engine's EnvelopeHits/EnvelopeMisses stats.
func TestEnvelopeSharingAcrossQueries(t *testing.T) {
	ctx := context.Background()
	model, rel := fixture(t, 29)
	eng, err := derive.New(model, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Op: Count, Preds: []Pred{{Attr: 0, Cmp: Le, Value: 1}}, MinProb: 0.5}
	q, err := Compile(model.Schema, spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Eval(ctx, eng, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	a := first.Plan.Adaptive
	if a == nil {
		t.Fatal("bounded adaptive evaluation has no adaptive block")
	}
	// The cache is content-keyed, so duplicate evidence patterns hit even
	// within the first plan; but a cold cache must have paid misses.
	if a.EnvelopeMisses == 0 {
		t.Fatalf("first evaluation: %d hits / %d misses, want cold misses", a.EnvelopeHits, a.EnvelopeMisses)
	}
	q2, err := Compile(model.Schema, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Eval(ctx, eng, rel, q2)
	if err != nil {
		t.Fatal(err)
	}
	b := second.Plan.Adaptive
	if b == nil || b.EnvelopeHits == 0 || b.EnvelopeMisses != 0 {
		t.Fatalf("second evaluation: %+v, want all envelope probes served from the shared cache", b)
	}
	st := eng.Stats()
	if st.EnvelopeHits != int64(a.EnvelopeHits+b.EnvelopeHits) || st.EnvelopeMisses != int64(a.EnvelopeMisses+b.EnvelopeMisses) {
		t.Fatalf("engine stats (%d hits / %d misses) disagree with plans (%+v, %+v)",
			st.EnvelopeHits, st.EnvelopeMisses, a, b)
	}
	if r := st.EnvelopeHitRate(); r <= 0 || r >= 1 {
		t.Fatalf("envelope hit rate %v outside (0, 1)", r)
	}
	// Static evaluations bypass the shared cache entirely.
	before := st.EnvelopeHits + st.EnvelopeMisses
	_, qs := compileBoth(t, model.Schema, spec)
	if _, err := Eval(ctx, eng, rel, qs); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.EnvelopeHits+st.EnvelopeMisses != before {
		t.Fatal("static evaluation probed the shared envelope cache")
	}
}

// TestExistsCollectiveRefute pins the exists re-plan round: a threshold
// the derivation-free upper bound already rules out is answered without
// deriving a single block, recorded as a re-plan, and agrees with the
// static full scan. The micro-relation is assembled from fixture tuples
// so the envelopes are real: multi-missing tuples whose predicate
// attribute is missing (informative upper bounds), plus refuted
// complete tuples.
func TestExistsCollectiveRefute(t *testing.T) {
	ctx := context.Background()
	model, rel := fixture(t, 37)
	s := model.Schema

	// Find a predicate attribute with enough multi-missing tuples missing
	// it, and build the micro-relation.
	for attr := 0; attr < s.NumAttrs(); attr++ {
		var open []relation.Tuple
		for _, tu := range rel.Tuples {
			if tu.NumMissing() > 1 && tu[attr] == relation.Missing {
				open = append(open, tu)
			}
		}
		if len(open) < 3 {
			continue
		}
		for v := 0; v < s.Attrs[attr].Card(); v++ {
			micro := relation.NewRelation(s)
			for _, tu := range open[:3] {
				if err := micro.Append(tu); err != nil {
					t.Fatal(err)
				}
			}
			for _, tu := range rel.Tuples {
				if tu.IsComplete() && tu[attr] != v {
					if err := micro.Append(tu); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
			spec := Spec{Op: Exists, Preds: []Pred{{Attr: attr, Cmp: Eq, Value: v}}, MinProb: 0.999}
			q, qs := compileBoth(t, s, spec)
			eng, err := derive.New(model, engineConfig(2, 2))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Eval(ctx, eng, micro, q)
			if err != nil {
				t.Fatal(err)
			}
			a := res.Plan.Adaptive
			if a == nil || a.Replans == 0 {
				continue // this value's bounds leave the threshold open; try the next
			}
			// The refute fired: no derivation, decided no, early.
			if res.Exists || !res.EarlyStop {
				t.Fatalf("refuted exists: Exists=%v EarlyStop=%v", res.Exists, res.EarlyStop)
			}
			if res.Counters.Derived != 0 {
				t.Fatalf("refute derived %d blocks", res.Counters.Derived)
			}
			if len(a.ReplanCut) != 1 || a.ReplanCut[0] == 0 {
				t.Fatalf("replan cut %v, want one non-empty round", a.ReplanCut)
			}
			// Same decision as the static exact scan, and the reported
			// probability is a sound lower bound on its exact mass.
			engS, err := derive.New(model, engineConfig(2, 2))
			if err != nil {
				t.Fatal(err)
			}
			want, err := Eval(ctx, engS, micro, qs)
			if err != nil {
				t.Fatal(err)
			}
			if want.Exists != res.Exists {
				t.Fatalf("adaptive refute %v, static scan %v", res.Exists, want.Exists)
			}
			if !want.EarlyStop && res.Prob > want.Prob {
				t.Fatalf("refute bound %v exceeds exact %v", res.Prob, want.Prob)
			}
			if eng.Stats().Replans == 0 {
				t.Fatal("engine stats did not record the re-plan")
			}
			return
		}
	}
	t.Fatal("no (attribute, value) produced a collective refute on this fixture")
}

// TestPlanPathAllocations pins the pooled plan path: steady-state plan
// compilation on a warm engine stays within a fixed allocation budget
// (pre-pooling it sat in the hundreds).
func TestPlanPathAllocations(t *testing.T) {
	ctx := context.Background()
	model, rel := fixture(t, 43)
	eng, err := derive.New(model, engineConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(model.Schema, Spec{
		Op: Count, Preds: []Pred{{Attr: 0, Cmp: Le, Value: 1}}, MinProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(ctx, eng, rel, q); err != nil { // warm envelopes + caches
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Plan(ctx, eng, rel, q); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 40
	if allocs > budget {
		t.Fatalf("plan path allocates %.1f per run, budget %d", allocs, budget)
	}
}
