package query

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"repro/internal/derive"
	"repro/internal/dist"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// Row is one TopK result: a satisfying completion, its probability, and
// its provenance. Rows of equal probability keep input order (and, within
// one source tuple, the block's alternative order), so TopK output is
// bit-stable for every worker count.
type Row struct {
	// Index is the source tuple's position in the input relation.
	Index int
	// Tuple is the satisfying completion.
	Tuple relation.Tuple
	// Prob is the completion's probability (1 for certain tuples).
	Prob float64
	// Certain reports a complete input tuple (no inference involved).
	Certain bool
}

// Group is one bucket of a GroupBy histogram: the expected number of
// satisfying tuples taking the value, with the variance of that count
// (blocks contribute independent Bernoulli mass, certain tuples are
// constant).
type Group struct {
	Value    int
	Label    string
	Expected float64
	Variance float64
}

// Counters partition the tuples one evaluation scanned by how much
// inference each cost. Scanned = Pruned + Bounded + Derived.
type Counters struct {
	// Scanned is the number of input tuples considered.
	Scanned int64
	// Pruned tuples cost no inference at all: complete tuples, tuples
	// refuted by evidence or structure, and tuples skipped once early
	// termination made their contribution irrelevant.
	Pruned int64
	// Bounded tuples were decided from the per-attribute marginal served
	// by the engine's shared CPD cache — a vote at most, never a block
	// expansion or a Gibbs chain.
	Bounded int64
	// Derived tuples were sent to full block derivation.
	Derived int64
	// BoundWidth accumulates the final bound-interval width per scanned
	// tuple: 0 for pruned/bounded tuples (their probability was pinned
	// exactly), 1 for derived tuples (their bounds stayed vacuous).
	BoundWidth float64
}

// Result is the answer of one evaluation. The populated fields depend on
// the operator; Counters is always set.
type Result struct {
	// Op echoes the evaluated operator.
	Op Op

	// Expected is the expected satisfying-tuple count (Count, no
	// threshold).
	Expected float64
	// Count is the number of tuples whose satisfaction probability
	// reached the threshold (Count with MinProb > 0).
	Count int64

	// Prob is the existence probability (Exists). When EarlyStop is set
	// it is the partial accumulation at the moment the threshold was
	// crossed — a sound lower bound, not the full product.
	Prob float64
	// Exists is the Exists decision: Prob > 0, or Prob >= MinProb when a
	// threshold was given.
	Exists bool
	// EarlyStop reports that evaluation ended before the full scan
	// because the answer could no longer change.
	EarlyStop bool

	// Rows are the TopK results, most probable first.
	Rows []Row

	// Groups is the GroupBy histogram, one entry per domain value.
	Groups []Group

	// Counters report the pruning achieved.
	Counters Counters
}

// action is the per-tuple plan decided by the classification pass.
type action uint8

const (
	// actSkip: no completion can satisfy the predicates — the tuple
	// contributes exactly nothing.
	actSkip action = iota
	// actOne: a complete tuple satisfying every predicate — probability
	// exactly 1, no inference.
	actOne
	// actBound: a single-missing tuple decidable from the voted marginal
	// CPD, bit-identically to its derived block.
	actBound
	// actDerive: only the completion block decides the tuple.
	actDerive
)

// plan classifies every input tuple into an action and collects the
// prefetchable worklist: tuples to derive, plus bounded tuples — warming
// a single-missing tuple's vote entry fills the very CPD slot
// MarginalCPD reads, so full-scan operators shard the voting work across
// the pools instead of voting sequentially in the fold loop.
// Single-missing tuples take the CPD path only when the engine keeps
// full blocks (MaxAlternatives <= 0): a capped block is renormalized, so
// only the block itself reproduces the derived answer.
func (q *Query) plan(eng *derive.Engine, rel *relation.Relation) (acts []action, work []relation.Tuple) {
	useBounds := eng.MaxAlternatives() <= 0
	acts = make([]action, len(rel.Tuples))
	var buf []int
	for i, t := range rel.Tuples {
		c, open := q.classify(t, buf)
		if open != nil {
			buf = open[:0]
		}
		switch {
		case c == refuted:
			acts[i] = actSkip
		case t.IsComplete():
			acts[i] = actOne
		case useBounds && t.NumMissing() == 1:
			acts[i] = actBound
			work = append(work, t)
		default:
			acts[i] = actDerive
			work = append(work, t)
		}
	}
	return acts, work
}

// satisfies reports whether the complete tuple u passes every predicate.
func (q *Query) satisfies(u relation.Tuple) bool {
	for _, a := range q.constrained {
		if !q.sat[a].contains(u[a]) {
			return false
		}
	}
	return true
}

// altsProb sums the probability of the satisfying alternatives, in block
// order — exactly the naive evaluation of a derived block.
func (q *Query) altsProb(alts []pdb.Alternative) float64 {
	var s float64
	for _, a := range alts {
		if q.satisfies(a.Tuple) {
			s += a.Prob
		}
	}
	return s
}

// valueMass is one positive-mass completion value of a marginal CPD.
type valueMass struct {
	v int
	p float64
}

// orderedMass lists d's positive-mass values in the exact order
// pdb.NewBlock would emit them as alternatives: built in value order,
// stable-sorted by descending probability (so equal-probability values
// keep value order). Replicating the order matters — float sums are
// order-sensitive, and the evaluator's contract is bit-identity with the
// derived block.
func orderedMass(d dist.Dist) []valueMass {
	ord := make([]valueMass, 0, len(d))
	for v, p := range d {
		if p > 0 {
			ord = append(ord, valueMass{v: v, p: p})
		}
	}
	slices.SortStableFunc(ord, func(x, y valueMass) int {
		switch {
		case x.p > y.p:
			return -1
		case x.p < y.p:
			return 1
		}
		return 0
	})
	return ord
}

// distProb is the satisfaction probability of a single-missing tuple
// whose missing attribute attr completes according to d: the sum of the
// satisfying completions' mass, in block-alternative order, bit-identical
// to altsProb over the block the derivation path would expand.
func (q *Query) distProb(attr int, d dist.Dist) float64 {
	set := q.sat[attr]
	var s float64
	for _, vm := range orderedMass(d) {
		if set == nil || set.contains(vm.v) {
			s += vm.p
		}
	}
	return s
}

// distAlts expands the marginal CPD of a single-missing tuple into the
// same completions, in the same order, as the derived block's
// alternatives.
func distAlts(t relation.Tuple, attr int, d dist.Dist) []pdb.Alternative {
	ord := orderedMass(d)
	alts := make([]pdb.Alternative, len(ord))
	for i, vm := range ord {
		tu := t.Clone()
		tu[attr] = vm.v
		alts[i] = pdb.Alternative{Tuple: tu, Prob: vm.p}
	}
	return alts
}

// Eval evaluates q over rel through eng with the engine's default pool
// sizes. See EvalPools.
func Eval(ctx context.Context, eng *derive.Engine, rel *relation.Relation, q *Query) (*Result, error) {
	return EvalPools(ctx, eng, rel, q, derive.Pools{})
}

// EvalPools evaluates the compiled query over rel, extensionally, on top
// of the engine's shared caches. Every answer is bit-identical to
// deriving the full probabilistic database through the same engine and
// evaluating naively over the stream, for every worker count — yet
// selective queries touch only a fraction of the tuples:
//
//   - Tuples whose evidence refutes the predicates (or whose compiled
//     satisfying set is empty) are pruned with no inference: every
//     completion fails, so their contribution is exactly zero.
//   - Complete tuples are decided by evidence alone.
//   - Single-missing tuples are decided from the voted marginal CPD,
//     served by the engine's shared CPD cache — the same estimate, from
//     the same cache slot, full derivation would expand into the block —
//     summed in block-alternative order so the answer is bit-identical
//     without the block ever being built. (On an engine that caps block
//     alternatives the cap renormalizes probabilities, so these tuples
//     fall back to full derivation instead.)
//   - Multi-missing tuples are the deliberate limit of pruning: their
//     voted marginals are a different estimator than the Gibbs joint —
//     an approximation, not a bound — so exactness demands scheduling
//     them for full derivation through the engine's joint cache.
//   - Exists stops at the first certain witness (a complete satisfying
//     tuple pins the answer to exactly 1), and, under a probability
//     threshold, as soon as the accumulated existence probability —
//     which never decreases — reaches it. TopK stops once it holds k
//     rows of probability 1: later rows tie at best, and ties keep input
//     order.
//
// Count and GroupBy scan everything, so their worklist — bounded and
// derived tuples alike — is prefetched through the request pools (sizes
// affect scheduling only, never the answer); Exists under a threshold
// resolves sequentially so early termination can cut the work short,
// and TopK does the same exactly when its early stop can actually fire
// (k > 0 with at least k complete satisfying tuples), prefetching
// otherwise. Canceling ctx aborts evaluation with ctx.Err().
//
// The bit-identity contract holds on chains-mode engines (GibbsWorkers >
// 0), whose multi-missing estimates are content-seeded per tuple. On a
// DAG-mode engine the evaluator resolves each multi-missing tuple as a
// single-tuple DAG batch, while full derivation samples the workload
// holistically — the DAG estimator is workload-dependent by
// construction, the same caveat derivation itself documents — so
// DAG-mode answers match the oracle only for tuples already in the
// joint cache.
//
// On success the evaluation's counters are folded into the engine's
// stats (EngineStats' Query* fields).
func EvalPools(ctx context.Context, eng *derive.Engine, rel *relation.Relation, q *Query, pools derive.Pools) (*Result, error) {
	if eng == nil || rel == nil || q == nil {
		return nil, fmt.Errorf("query: nil engine, relation, or query")
	}
	if d := eng.Model().Schema.Diff(rel.Schema); d != "" {
		return nil, &derive.SchemaMismatchError{Model: eng.Model().Schema, Data: rel.Schema, Diff: d}
	}
	if d := eng.Model().Schema.Diff(q.schema); d != "" {
		return nil, fmt.Errorf("query: compiled against a different schema: %s", d)
	}
	var (
		res *Result
		err error
	)
	switch q.op {
	case Count:
		res, err = q.evalCount(ctx, eng, rel, pools)
	case Exists:
		res, err = q.evalExists(ctx, eng, rel, pools)
	case TopK:
		res, err = q.evalTopK(ctx, eng, rel, pools)
	case GroupBy:
		res, err = q.evalGroupBy(ctx, eng, rel, pools)
	default:
		return nil, fmt.Errorf("query: unknown operation %v", q.op)
	}
	if err != nil {
		return nil, err
	}
	c := &res.Counters
	c.Scanned = int64(len(rel.Tuples))
	c.Pruned = c.Scanned - c.Bounded - c.Derived
	c.BoundWidth = float64(c.Derived)
	eng.RecordQuery(c.Scanned, c.Pruned, c.Bounded, c.Derived, c.BoundWidth)
	return res, nil
}

// tupleProb resolves the satisfaction probability of one planned tuple,
// bumping the evaluation counters.
func (q *Query) tupleProb(ctx context.Context, eng *derive.Engine, t relation.Tuple, act action, c *Counters) (float64, error) {
	switch act {
	case actSkip:
		return 0, nil
	case actOne:
		return 1, nil
	case actBound:
		c.Bounded++
		attr := t.MissingAttrs()[0]
		d, _, err := eng.MarginalCPD(t, attr)
		if err != nil {
			return 0, err
		}
		return q.distProb(attr, d), nil
	default:
		c.Derived++
		b, _, err := eng.ResolveBlock(ctx, t)
		if err != nil {
			return 0, err
		}
		return q.altsProb(b.Alts), nil
	}
}

// evalCount folds per-tuple satisfaction probabilities in input order:
// the expected count, or — with a threshold — the number of tuples whose
// probability reaches it. The derivation worklist is prefetched in
// parallel first; the fold then serves from warm caches.
func (q *Query) evalCount(ctx context.Context, eng *derive.Engine, rel *relation.Relation, pools derive.Pools) (*Result, error) {
	acts, work := q.plan(eng, rel)
	if len(work) > 0 {
		eng.PrefetchBlocks(ctx, work, pools)
	}
	res := &Result{Op: Count}
	for i, t := range rel.Tuples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if acts[i] == actSkip {
			continue // contributes exactly 0, and 0 is never >= a positive threshold
		}
		p, err := q.tupleProb(ctx, eng, t, acts[i], &res.Counters)
		if err != nil {
			return nil, err
		}
		if q.minProb > 0 {
			if p >= q.minProb {
				res.Count++
			}
		} else {
			res.Expected += p
		}
	}
	return res, nil
}

// evalExists computes the probability that at least one tuple satisfies
// the predicates, 1 - prod(1 - p_t) under block independence. A complete
// satisfying tuple is a certain witness: the product has an exactly-zero
// factor, so the answer is exactly 1 with no inference at all. With a
// threshold, evaluation runs sequentially and stops as soon as the
// accumulated probability — which never decreases — reaches it; without
// one, the remaining worklist is prefetched in parallel and folded fully.
func (q *Query) evalExists(ctx context.Context, eng *derive.Engine, rel *relation.Relation, pools derive.Pools) (*Result, error) {
	acts, work := q.plan(eng, rel)
	res := &Result{Op: Exists}
	for _, act := range acts {
		if act == actOne {
			res.Prob, res.Exists, res.EarlyStop = 1, true, true
			return res, nil
		}
	}
	miss := 1.0 // probability that no tuple satisfies
	if q.minProb > 0 {
		for i, t := range rel.Tuples {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if acts[i] == actSkip {
				continue // factor 1 - 0: multiplying by 1 is exact
			}
			p, err := q.tupleProb(ctx, eng, t, acts[i], &res.Counters)
			if err != nil {
				return nil, err
			}
			miss *= 1 - p
			if 1-miss >= q.minProb {
				res.Prob, res.Exists, res.EarlyStop = 1-miss, true, true
				return res, nil
			}
		}
		res.Prob = 1 - miss
		res.Exists = res.Prob >= q.minProb
		return res, nil
	}
	if len(work) > 0 {
		eng.PrefetchBlocks(ctx, work, pools)
	}
	for i, t := range rel.Tuples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if acts[i] == actSkip {
			continue
		}
		p, err := q.tupleProb(ctx, eng, t, acts[i], &res.Counters)
		if err != nil {
			return nil, err
		}
		miss *= 1 - p
	}
	res.Prob = 1 - miss
	res.Exists = res.Prob > 0
	return res, nil
}

// evalTopK folds the satisfying completions into the k most probable
// rows, holding at most k rows at any time. Insertion order is input
// order and equal-probability rows keep it, so the result is exactly the
// stable descending sort of the full selection cut to k — and once k
// rows of probability 1 are held, no later row can displace anything, so
// the scan stops. When early termination is guaranteed to fire (k > 0
// and at least k complete satisfying tuples exist — each inserts a
// probability-1 row) evaluation stays sequential so the scan really does
// stop early; otherwise the full scan is inevitable and the worklist is
// prefetched in parallel like Count's.
func (q *Query) evalTopK(ctx context.Context, eng *derive.Engine, rel *relation.Relation, pools derive.Pools) (*Result, error) {
	res := &Result{Op: TopK}
	acts, work := q.plan(eng, rel)
	certains := 0
	for _, a := range acts {
		if a == actOne {
			certains++
		}
	}
	if (q.k <= 0 || certains < q.k) && len(work) > 0 {
		eng.PrefetchBlocks(ctx, work, pools)
	}
	insert := func(r Row) {
		if q.minProb > 0 && r.Prob < q.minProb {
			return
		}
		if q.k > 0 && len(res.Rows) == q.k && res.Rows[q.k-1].Prob >= r.Prob {
			return
		}
		pos := sort.Search(len(res.Rows), func(i int) bool { return res.Rows[i].Prob < r.Prob })
		res.Rows = append(res.Rows, Row{})
		copy(res.Rows[pos+1:], res.Rows[pos:])
		res.Rows[pos] = r
		if q.k > 0 && len(res.Rows) > q.k {
			res.Rows = res.Rows[:q.k]
		}
	}
	for i, t := range rel.Tuples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if q.k > 0 && len(res.Rows) == q.k && res.Rows[q.k-1].Prob >= 1 {
			res.EarlyStop = true
			break
		}
		switch acts[i] {
		case actSkip:
		case actOne:
			insert(Row{Index: i, Tuple: t, Prob: 1, Certain: true})
		case actBound:
			res.Counters.Bounded++
			attr := t.MissingAttrs()[0]
			d, _, err := eng.MarginalCPD(t, attr)
			if err != nil {
				return nil, err
			}
			for _, a := range distAlts(t, attr, d) {
				if q.satisfies(a.Tuple) {
					insert(Row{Index: i, Tuple: a.Tuple, Prob: a.Prob})
				}
			}
		default:
			res.Counters.Derived++
			b, _, err := eng.ResolveBlock(ctx, t)
			if err != nil {
				return nil, err
			}
			for _, a := range b.Alts {
				if q.satisfies(a.Tuple) {
					insert(Row{Index: i, Tuple: a.Tuple, Prob: a.Prob})
				}
			}
		}
	}
	return res, nil
}

// evalGroupBy folds the satisfying probability mass into an expected
// histogram of the group attribute: certain tuples contribute 1 to their
// group, every uncertain tuple contributes its per-value satisfying mass
// (independent Bernoulli variance per block). The derivation worklist is
// prefetched in parallel first.
func (q *Query) evalGroupBy(ctx context.Context, eng *derive.Engine, rel *relation.Relation, pools derive.Pools) (*Result, error) {
	acts, work := q.plan(eng, rel)
	if len(work) > 0 {
		eng.PrefetchBlocks(ctx, work, pools)
	}
	g := q.groupAttr
	card := q.schema.Attrs[g].Card()
	res := &Result{Op: GroupBy, Groups: make([]Group, card)}
	for v := range res.Groups {
		res.Groups[v] = Group{Value: v, Label: q.schema.Attrs[g].Domain[v]}
	}
	perValue := make([]float64, card)
	fold := func() {
		for v, p := range perValue {
			res.Groups[v].Expected += p
			res.Groups[v].Variance += p * (1 - p)
		}
	}
	for i, t := range rel.Tuples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch acts[i] {
		case actSkip:
		case actOne:
			res.Groups[t[g]].Expected++
		case actBound:
			res.Counters.Bounded++
			attr := t.MissingAttrs()[0]
			d, _, err := eng.MarginalCPD(t, attr)
			if err != nil {
				return nil, err
			}
			clear(perValue)
			set := q.sat[attr]
			for _, vm := range orderedMass(d) {
				if set != nil && !set.contains(vm.v) {
					continue
				}
				gv := t[g]
				if attr == g {
					gv = vm.v
				}
				perValue[gv] += vm.p
			}
			fold()
		default:
			res.Counters.Derived++
			b, _, err := eng.ResolveBlock(ctx, t)
			if err != nil {
				return nil, err
			}
			clear(perValue)
			for _, a := range b.Alts {
				if q.satisfies(a.Tuple) {
					perValue[a.Tuple[g]] += a.Prob
				}
			}
			fold()
		}
	}
	return res, nil
}
