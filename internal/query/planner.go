// Planner: the first stage of the query pipeline. It compiles one
// evaluation's Plan against a concrete engine and relation — ordering
// predicate evaluation by estimated selectivity, classifying every input
// tuple into a resolution tier, and attaching a sound dissociation bound
// interval to each multi-missing tuple the executor could decide without
// sampling. Planning never runs a Gibbs chain: its only inference cost
// is the per-attribute CPD envelopes behind derive.Engine.BoundCPD,
// which are memoized in the engine's shared CPD cache.
package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/derive"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// tupleTier is the planner's resolution tier for one input tuple, in
// increasing cost order.
type tupleTier uint8

const (
	// tierSkip: no completion can satisfy the predicates — the tuple
	// contributes exactly 0.
	tierSkip tupleTier = iota
	// tierCertain: a complete tuple satisfying every predicate —
	// probability exactly 1, no inference.
	tierCertain
	// tierVote: a single-missing tuple decidable from the voted marginal
	// CPD, bit-identically to its derived block.
	tierVote
	// tierBound: a multi-missing tuple carrying a non-vacuous
	// dissociation interval; the executor decides it from the interval
	// when the operator's threshold allows, deriving only otherwise.
	tierBound
	// tierDerive: only full block derivation decides the tuple.
	tierDerive
	// tierObserved: a live-dataset tuple with applied evidence. Its
	// conditioned posterior block is already materialized in the snapshot,
	// so its satisfying mass is exact and free — no vote, no bound, no
	// derivation. Observed tuples never consult BoundCPD or the marginal
	// CPD: those are estimators over the prior evidence, and reusing them
	// against conditioned state is exactly the staleness this tier exists
	// to rule out.
	tierObserved
)

// planned is one tuple's plan entry: its tier, plus the bound interval
// for tierBound tuples (vacuous for tierDerive ones; degenerate exact
// [p, p] for tierObserved ones) and the conditioned block for
// tierObserved ones.
type planned struct {
	tier tupleTier
	iv   derive.Interval
	blk  *pdb.Block
}

// PlanInfo is the public summary of one evaluation's plan, surfaced on
// Result.Plan for explain output and serving telemetry.
type PlanInfo struct {
	// PredOrder lists the constrained attribute names in evaluation
	// order, most selective first.
	PredOrder []string
	// Selectivity is the estimated satisfying fraction per PredOrder
	// entry: the satisfying mass under the attribute's evidence-free
	// voted marginal (one vote, memoized in the engine's shared CPD
	// cache), falling back to satisfying-set cardinality over domain
	// cardinality if the vote fails.
	Selectivity []float64
	// Tier counts over the scanned relation. Observed counts live-dataset
	// tuples decided from their conditioned posterior blocks (exact, no
	// inference); always 0 for batch evaluations.
	Refuted, Certain, SingleMissing, Bounded, Derive, Observed int
	// BoundsUsed reports that the operator could exploit dissociation
	// intervals, so the planner asked the engine for them.
	BoundsUsed bool
	// Join summarizes the intensional SPJ layer when the evaluation ran
	// over a compiled join: the join order, conditions, projection, and
	// the safety verdict. Nil for plain single-relation queries.
	Join *JoinPlanInfo
	// Timing holds the measured explain-analyze block — actual per-tier
	// resolution durations next to the predicted tier counts above. Nil
	// unless the evaluation requested timing (Spec.Analyze or a request
	// trace) and actually executed (Plan alone never runs the executor).
	Timing *PlanTiming
	// Adaptive summarizes the adaptive execution layer: traffic on the
	// shared envelope-interval cache, the cost model's enumeration
	// decisions, and — after execution — the executor's re-plan rounds.
	// Nil when the evaluation ran with Spec.Static, or never consulted
	// bounds and carried no deadline.
	Adaptive *AdaptiveInfo
}

// AdaptiveInfo is the adaptive-execution block of one plan summary.
// Everything in it describes scheduling, never answers: the same
// evaluation with Spec.Static produces a bit-identical Result apart
// from this block.
type AdaptiveInfo struct {
	// CostModel reports that the calibrated chooser was active — both
	// tier-latency histograms warm — rather than falling back to the
	// static enumeration order.
	CostModel bool
	// VoteNS and ChainNS are the calibrated mean stage latencies, in
	// nanoseconds, the chooser weighed (zero when CostModel is false).
	VoteNS, ChainNS float64
	// EnvelopeHits and EnvelopeMisses count this plan's probes of the
	// engine's shared envelope-interval cache. Misses include probes the
	// cost model declined to compute.
	EnvelopeHits, EnvelopeMisses int
	// EnvelopesSkipped counts multi-missing tuples whose envelope
	// enumeration the cost model declined (or pre-judged vacuous), routing
	// them straight to the derive tier.
	EnvelopesSkipped int
	// Replans counts executor re-plan rounds that cut at least one
	// remaining candidate after fresh resolutions tightened the state.
	Replans int
	// ReplanCut lists, per re-plan round, how many candidates the round
	// cut.
	ReplanCut []int
}

// JoinPlanInfo is the SPJ portion of a plan summary: how the joined
// relation was assembled and whether its lineage admits exact
// extensional evaluation.
type JoinPlanInfo struct {
	// Relations lists the input relations in join order, base first.
	Relations []string
	// Conditions renders each equi-join, e.g. "people.city = cities.city",
	// aligned with Relations[1:].
	Conditions []string
	// Projection lists the projected attribute names (distinct-answer
	// mode); empty when the query selects whole tuples.
	Projection []string
	// Safe reports a hierarchical plan: no two non-refuted joined rows
	// share an uncertain base tuple whose missing attributes the query
	// depends on, so per-row lineage is read-once and extensional
	// evaluation is exact.
	Safe bool
	// SharedUncertain counts the base tuples that break the hierarchy:
	// relevantly-uncertain tuples shared by at least two non-refuted
	// joined rows.
	SharedUncertain int
	// Verdict is the one-line human rendering of the safety analysis.
	Verdict string
}

// String renders the plan as the multi-line explain block the mrslquery
// -explain flag prints.
func (p *PlanInfo) String() string {
	var b strings.Builder
	b.WriteString("plan:\n")
	if len(p.PredOrder) > 0 {
		b.WriteString("  predicate order:")
		for i, name := range p.PredOrder {
			fmt.Fprintf(&b, " %s(sel %.2f)", name, p.Selectivity[i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  tiers: %d refuted, %d certain, %d single-missing, %d bounded, %d derive",
		p.Refuted, p.Certain, p.SingleMissing, p.Bounded, p.Derive)
	if p.Observed > 0 {
		fmt.Fprintf(&b, ", %d observed", p.Observed)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  dissociation bounds: %v\n", p.BoundsUsed)
	if j := p.Join; j != nil {
		fmt.Fprintf(&b, "  join order: %s", strings.Join(j.Relations, " ⋈ "))
		if len(j.Conditions) > 0 {
			fmt.Fprintf(&b, " on %s", strings.Join(j.Conditions, ", "))
		}
		b.WriteByte('\n')
		if len(j.Projection) > 0 {
			fmt.Fprintf(&b, "  projection: %s (distinct answers)\n", strings.Join(j.Projection, ", "))
		}
		fmt.Fprintf(&b, "  safety: %s\n", j.Verdict)
	}
	// The adaptive block prints only run-independent figures: cache
	// traffic and skip counts are deterministic for a fixed query
	// sequence, while the calibrated latencies vary run to run and stay
	// off the explain transcript (they are on AdaptiveInfo and /metrics).
	if a := p.Adaptive; a != nil {
		fmt.Fprintf(&b, "  adaptive: envelope cache %d hit / %d miss, %d cost-model skips\n",
			a.EnvelopeHits, a.EnvelopeMisses, a.EnvelopesSkipped)
		if a.Replans > 0 {
			fmt.Fprintf(&b, "  replans: %d rounds, cut %v\n", a.Replans, a.ReplanCut)
		}
	}
	if t := p.Timing; t != nil {
		fmt.Fprintf(&b, "  timing: plan %.3fms, wall %.3fms\n", t.PlanMS, t.WallMS)
		for _, tt := range t.Tiers {
			fmt.Fprintf(&b, "    %s: %d tuples, %.3fms\n", tt.Tier, tt.Tuples, tt.DurationMS)
		}
	}
	return b.String()
}

// plan is one evaluation's compiled plan: per-tuple tiers and intervals
// plus the selectivity-ordered predicate list.
type plan struct {
	q *Query
	// acts aligns with the relation's tuples.
	acts []planned
	// order lists the constrained attributes most selective first;
	// satisfies consults it so refutation short-circuits as early as the
	// estimates allow.
	order []int
	info  *PlanInfo
	// scratch is the pooled backing of acts/order, returned by release().
	scratch *planScratch
}

// planScratch is the pooled allocation scratch of one plan: the
// per-tuple tier slice and the small per-plan buffers. newPlan takes one
// from planPool and release() returns it once the evaluation no longer
// touches acts/order. PlanInfo is excluded on purpose — it is freshly
// allocated per plan and escapes on Result.Plan.
type planScratch struct {
	acts       []planned
	order      []int
	sel        []float64
	satBools   [][]bool
	buf        []int
	allMissing relation.Tuple
}

var planPool = sync.Pool{New: func() any { return new(planScratch) }}

// grow returns s resized to n, reallocating only when capacity is short.
// Reused elements keep stale contents; callers overwrite every index.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// release returns the plan's pooled scratch. Callers must be done with
// acts and order; info stays valid forever. Safe to call more than once.
func (p *plan) release() {
	s := p.scratch
	if s == nil {
		return
	}
	p.scratch, p.acts, p.order = nil, nil, nil
	clear(s.acts)     // drop observed-block pointers so the pool doesn't pin them
	clear(s.satBools) // likewise the compiled queries' satisfying sets
	planPool.Put(s)
}

// usesBounds reports whether the operator can turn a [lo, hi] interval
// into a decision: thresholded count and exists compare against MinProb,
// and topk cuts against MinProb or the rank-k probability. Plain
// expected counts, unthresholded exists, and groupby need exact masses,
// so bounding them would be wasted planning work.
func (q *Query) usesBounds() bool {
	if q.boundsOff {
		return false
	}
	switch q.op {
	case Count, Exists:
		return q.minProb > 0
	case TopK:
		return q.k > 0 || q.minProb > 0
	default:
		return false
	}
}

// newPlan compiles the evaluation plan of q over rel on eng. overrides
// (nil for batch evaluations) maps tuple index -> conditioned posterior
// block of a live-dataset snapshot; overridden incomplete tuples are
// classified tierObserved with an exact [p, p] interval, computed by
// summing their satisfying alternatives in block order — the identical
// float operations naive evaluation of the conditioned database
// performs, preserving bit-identity. Canceling ctx aborts planning — the
// dissociation envelopes can cost real votes on a cold cache, so the
// planner is as cancellable as the executor.
func (q *Query) newPlan(ctx context.Context, eng *derive.Engine, rel *relation.Relation, overrides map[int]*pdb.Block) (*plan, error) {
	s := planPool.Get().(*planScratch)
	s.acts = grow(s.acts, len(rel.Tuples))
	p := &plan{q: q, acts: s.acts, scratch: s}
	info := &PlanInfo{BoundsUsed: q.usesBounds()}
	// Under a deadline budget the executor may have to answer derive-tier
	// tuples from bounds instead of chains, so the planner computes the
	// dissociation envelopes even for operators that cannot use them to
	// decide (expected counts, unthresholded exists, groupby). Those
	// intervals ride along on the derive tier — never reclassified to the
	// bound tier, whose threshold decisions would misfire at MinProb 0.
	_, hasDL := ctx.Deadline()

	// Order predicate evaluation by estimated selectivity: the compiled
	// satisfying fraction, sharpened by the attribute's evidence-free
	// voted marginal — one vote against the top of the lattice, computed
	// through (and memoized in) the engine's shared CPD cache, so every
	// plan after the first is served from the same slot. Ordering
	// changes evaluation cost only, never answers — satisfies is a
	// conjunction.
	s.order = grow(s.order, len(q.constrained))
	copy(s.order, q.constrained)
	p.order = s.order
	if len(p.order) > 0 {
		s.sel = grow(s.sel, q.schema.NumAttrs())
		sel := s.sel
		if len(s.allMissing) != q.schema.NumAttrs() {
			s.allMissing = relation.NewTuple(q.schema.NumAttrs())
		}
		for _, a := range p.order {
			set := q.sat[a]
			frac := float64(set.n) / float64(len(set.ok))
			if d, _, err := eng.MarginalCPD(s.allMissing, a); err == nil && len(d) == len(set.ok) {
				var mass float64
				for v, in := range set.ok {
					if in {
						mass += d[v]
					}
				}
				frac = mass
			}
			sel[a] = frac
		}
		sort.SliceStable(p.order, func(i, j int) bool { return sel[p.order[i]] < sel[p.order[j]] })
		for _, a := range p.order {
			info.PredOrder = append(info.PredOrder, q.schema.Attrs[a].Name)
			info.Selectivity = append(info.Selectivity, sel[a])
		}
	}

	// Single-missing tuples take the CPD path only when the engine keeps
	// full blocks: a capped block is renormalized, so only the block
	// itself reproduces the derived answer. The same cap disables
	// dissociation bounds inside BoundCPD.
	useVote := eng.MaxAlternatives() <= 0

	// sat in the [][]bool shape BoundCPD consumes, built once per plan.
	wantIV := info.BoundsUsed || hasDL
	var satBools [][]bool
	if wantIV {
		s.satBools = grow(s.satBools, q.schema.NumAttrs())
		satBools = s.satBools
		clear(satBools)
		for _, a := range q.constrained {
			satBools[a] = q.sat[a].ok
		}
	}

	// The adaptive layer: when the query allows it, multi-missing
	// envelopes go through the engine's shared interval cache, gated by
	// the calibrated cost model. Static queries keep the fixed order and
	// the un-shared BoundCPD path.
	var cm costModel
	if wantIV && !q.static {
		cm = newCostModel(eng)
		info.Adaptive = &AdaptiveInfo{CostModel: cm.active, VoteNS: cm.voteNS, ChainNS: cm.chainNS}
	}

	buf := s.buf
	exhausted := false // deadline spent mid-plan: classify on, stop paying for envelopes
	for i, t := range rel.Tuples {
		if err := ctx.Err(); err != nil {
			// A spent deadline budget degrades planning instead of failing
			// it: the remaining tuples classify without envelope votes
			// (vacuous intervals — still sound), and the executor degrades
			// from there. Plain cancellation still aborts.
			if !hasDL || !errors.Is(err, context.DeadlineExceeded) {
				s.buf = buf
				p.release()
				return nil, err
			}
			exhausted = true
		}
		c, open := q.classify(t, buf)
		if open != nil {
			buf = open[:0]
		}
		switch {
		case c == refuted:
			p.acts[i] = planned{tier: tierSkip}
			info.Refuted++
		case t.IsComplete():
			p.acts[i] = planned{tier: tierCertain, iv: derive.Interval{Lo: 1, Hi: 1}}
			info.Certain++
		case overrides[i] != nil:
			// A conditioned tuple's posterior is already materialized; its
			// satisfying mass is exact, summed in block-alternative order.
			var mass float64
			for _, a := range overrides[i].Alts {
				if p.satisfies(a.Tuple) {
					mass += a.Prob
				}
			}
			p.acts[i] = planned{tier: tierObserved, iv: derive.Interval{Lo: mass, Hi: mass}, blk: overrides[i]}
			info.Observed++
		case useVote && t.NumMissing() == 1:
			p.acts[i] = planned{tier: tierVote}
			info.SingleMissing++
		default:
			iv := derive.VacuousInterval
			if wantIV && !exhausted && t.NumMissing() > 1 {
				var err error
				if a := info.Adaptive; a != nil {
					// Adaptive path: predict the enumeration's probe count,
					// let the cost model veto it, and serve what survives
					// through the shared interval cache. A vetoed or vacuous
					// tuple keeps the vacuous interval — same classification
					// BoundCPD's own overflow guard produces, so tier
					// decisions stay value-identical.
					probes, vac := envelopeProbes(q.schema, t, satBools)
					if vac {
						a.EnvelopesSkipped++
					} else {
						compute := cm.envelopeWorthIt(probes)
						var hit bool
						iv, hit, err = eng.BoundCPDShared(t, satBools, compute)
						switch {
						case err != nil:
						case hit:
							a.EnvelopeHits++
						default:
							a.EnvelopeMisses++
							if !compute {
								a.EnvelopesSkipped++
							}
						}
					}
				} else {
					iv, err = eng.BoundCPD(t, satBools)
				}
				if err != nil {
					s.buf = buf
					p.release()
					return nil, err
				}
			}
			if info.BoundsUsed && !iv.Vacuous() {
				p.acts[i] = planned{tier: tierBound, iv: iv}
				info.Bounded++
			} else {
				// The interval stays attached even when the operator cannot
				// decide from it: it is the executor's degradation fallback.
				p.acts[i] = planned{tier: tierDerive, iv: iv}
				info.Derive++
			}
		}
	}
	s.buf = buf
	p.info = info
	return p, nil
}

// Plan compiles the evaluation plan of q over rel on eng without
// executing it: the selectivity-ordered predicates, the resolution-tier
// classification of every tuple, and the dissociation intervals behind
// the bound tier (whose envelope votes do run, memoized in the engine's
// shared CPD cache — so planning honors ctx). It is the -explain
// primitive and the planner's benchmark surface.
func Plan(ctx context.Context, eng *derive.Engine, rel *relation.Relation, q *Query) (*PlanInfo, error) {
	if err := validate(eng, rel, q); err != nil {
		return nil, err
	}
	pl, err := q.newPlan(ctx, eng, rel, nil)
	if err != nil {
		return nil, err
	}
	pl.release()
	return pl.info, nil
}

// PlanSnapshot compiles the evaluation plan of q over a live dataset
// snapshot: like Plan, with the snapshot's conditioned blocks classified
// into the observed tier instead of the inference tiers.
func PlanSnapshot(ctx context.Context, eng *derive.Engine, snap *derive.DatasetSnapshot, q *Query) (*PlanInfo, error) {
	if snap == nil {
		return nil, fmt.Errorf("query: nil snapshot")
	}
	if err := validate(eng, snap.Rel, q); err != nil {
		return nil, err
	}
	pl, err := q.newPlan(ctx, eng, snap.Rel, snap.Overrides)
	if err != nil {
		return nil, err
	}
	pl.release()
	return pl.info, nil
}

// satisfies reports whether the complete tuple u passes every predicate,
// checking the most selective attributes first.
func (p *plan) satisfies(u relation.Tuple) bool {
	for _, a := range p.order {
		if !p.q.sat[a].contains(u[a]) {
			return false
		}
	}
	return true
}
