// Planner: the first stage of the query pipeline. It compiles one
// evaluation's Plan against a concrete engine and relation — ordering
// predicate evaluation by estimated selectivity, classifying every input
// tuple into a resolution tier, and attaching a sound dissociation bound
// interval to each multi-missing tuple the executor could decide without
// sampling. Planning never runs a Gibbs chain: its only inference cost
// is the per-attribute CPD envelopes behind derive.Engine.BoundCPD,
// which are memoized in the engine's shared CPD cache.
package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/derive"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// tupleTier is the planner's resolution tier for one input tuple, in
// increasing cost order.
type tupleTier uint8

const (
	// tierSkip: no completion can satisfy the predicates — the tuple
	// contributes exactly 0.
	tierSkip tupleTier = iota
	// tierCertain: a complete tuple satisfying every predicate —
	// probability exactly 1, no inference.
	tierCertain
	// tierVote: a single-missing tuple decidable from the voted marginal
	// CPD, bit-identically to its derived block.
	tierVote
	// tierBound: a multi-missing tuple carrying a non-vacuous
	// dissociation interval; the executor decides it from the interval
	// when the operator's threshold allows, deriving only otherwise.
	tierBound
	// tierDerive: only full block derivation decides the tuple.
	tierDerive
	// tierObserved: a live-dataset tuple with applied evidence. Its
	// conditioned posterior block is already materialized in the snapshot,
	// so its satisfying mass is exact and free — no vote, no bound, no
	// derivation. Observed tuples never consult BoundCPD or the marginal
	// CPD: those are estimators over the prior evidence, and reusing them
	// against conditioned state is exactly the staleness this tier exists
	// to rule out.
	tierObserved
)

// planned is one tuple's plan entry: its tier, plus the bound interval
// for tierBound tuples (vacuous for tierDerive ones; degenerate exact
// [p, p] for tierObserved ones) and the conditioned block for
// tierObserved ones.
type planned struct {
	tier tupleTier
	iv   derive.Interval
	blk  *pdb.Block
}

// PlanInfo is the public summary of one evaluation's plan, surfaced on
// Result.Plan for explain output and serving telemetry.
type PlanInfo struct {
	// PredOrder lists the constrained attribute names in evaluation
	// order, most selective first.
	PredOrder []string
	// Selectivity is the estimated satisfying fraction per PredOrder
	// entry: the satisfying mass under the attribute's evidence-free
	// voted marginal (one vote, memoized in the engine's shared CPD
	// cache), falling back to satisfying-set cardinality over domain
	// cardinality if the vote fails.
	Selectivity []float64
	// Tier counts over the scanned relation. Observed counts live-dataset
	// tuples decided from their conditioned posterior blocks (exact, no
	// inference); always 0 for batch evaluations.
	Refuted, Certain, SingleMissing, Bounded, Derive, Observed int
	// BoundsUsed reports that the operator could exploit dissociation
	// intervals, so the planner asked the engine for them.
	BoundsUsed bool
	// Join summarizes the intensional SPJ layer when the evaluation ran
	// over a compiled join: the join order, conditions, projection, and
	// the safety verdict. Nil for plain single-relation queries.
	Join *JoinPlanInfo
	// Timing holds the measured explain-analyze block — actual per-tier
	// resolution durations next to the predicted tier counts above. Nil
	// unless the evaluation requested timing (Spec.Analyze or a request
	// trace) and actually executed (Plan alone never runs the executor).
	Timing *PlanTiming
}

// JoinPlanInfo is the SPJ portion of a plan summary: how the joined
// relation was assembled and whether its lineage admits exact
// extensional evaluation.
type JoinPlanInfo struct {
	// Relations lists the input relations in join order, base first.
	Relations []string
	// Conditions renders each equi-join, e.g. "people.city = cities.city",
	// aligned with Relations[1:].
	Conditions []string
	// Projection lists the projected attribute names (distinct-answer
	// mode); empty when the query selects whole tuples.
	Projection []string
	// Safe reports a hierarchical plan: no two non-refuted joined rows
	// share an uncertain base tuple whose missing attributes the query
	// depends on, so per-row lineage is read-once and extensional
	// evaluation is exact.
	Safe bool
	// SharedUncertain counts the base tuples that break the hierarchy:
	// relevantly-uncertain tuples shared by at least two non-refuted
	// joined rows.
	SharedUncertain int
	// Verdict is the one-line human rendering of the safety analysis.
	Verdict string
}

// String renders the plan as the multi-line explain block the mrslquery
// -explain flag prints.
func (p *PlanInfo) String() string {
	var b strings.Builder
	b.WriteString("plan:\n")
	if len(p.PredOrder) > 0 {
		b.WriteString("  predicate order:")
		for i, name := range p.PredOrder {
			fmt.Fprintf(&b, " %s(sel %.2f)", name, p.Selectivity[i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  tiers: %d refuted, %d certain, %d single-missing, %d bounded, %d derive",
		p.Refuted, p.Certain, p.SingleMissing, p.Bounded, p.Derive)
	if p.Observed > 0 {
		fmt.Fprintf(&b, ", %d observed", p.Observed)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  dissociation bounds: %v\n", p.BoundsUsed)
	if j := p.Join; j != nil {
		fmt.Fprintf(&b, "  join order: %s", strings.Join(j.Relations, " ⋈ "))
		if len(j.Conditions) > 0 {
			fmt.Fprintf(&b, " on %s", strings.Join(j.Conditions, ", "))
		}
		b.WriteByte('\n')
		if len(j.Projection) > 0 {
			fmt.Fprintf(&b, "  projection: %s (distinct answers)\n", strings.Join(j.Projection, ", "))
		}
		fmt.Fprintf(&b, "  safety: %s\n", j.Verdict)
	}
	if t := p.Timing; t != nil {
		fmt.Fprintf(&b, "  timing: plan %.3fms, wall %.3fms\n", t.PlanMS, t.WallMS)
		for _, tt := range t.Tiers {
			fmt.Fprintf(&b, "    %s: %d tuples, %.3fms\n", tt.Tier, tt.Tuples, tt.DurationMS)
		}
	}
	return b.String()
}

// plan is one evaluation's compiled plan: per-tuple tiers and intervals
// plus the selectivity-ordered predicate list.
type plan struct {
	q *Query
	// acts aligns with the relation's tuples.
	acts []planned
	// order lists the constrained attributes most selective first;
	// satisfies consults it so refutation short-circuits as early as the
	// estimates allow.
	order []int
	info  *PlanInfo
}

// usesBounds reports whether the operator can turn a [lo, hi] interval
// into a decision: thresholded count and exists compare against MinProb,
// and topk cuts against MinProb or the rank-k probability. Plain
// expected counts, unthresholded exists, and groupby need exact masses,
// so bounding them would be wasted planning work.
func (q *Query) usesBounds() bool {
	if q.boundsOff {
		return false
	}
	switch q.op {
	case Count, Exists:
		return q.minProb > 0
	case TopK:
		return q.k > 0 || q.minProb > 0
	default:
		return false
	}
}

// newPlan compiles the evaluation plan of q over rel on eng. overrides
// (nil for batch evaluations) maps tuple index -> conditioned posterior
// block of a live-dataset snapshot; overridden incomplete tuples are
// classified tierObserved with an exact [p, p] interval, computed by
// summing their satisfying alternatives in block order — the identical
// float operations naive evaluation of the conditioned database
// performs, preserving bit-identity. Canceling ctx aborts planning — the
// dissociation envelopes can cost real votes on a cold cache, so the
// planner is as cancellable as the executor.
func (q *Query) newPlan(ctx context.Context, eng *derive.Engine, rel *relation.Relation, overrides map[int]*pdb.Block) (*plan, error) {
	p := &plan{q: q, acts: make([]planned, len(rel.Tuples))}
	info := &PlanInfo{BoundsUsed: q.usesBounds()}
	// Under a deadline budget the executor may have to answer derive-tier
	// tuples from bounds instead of chains, so the planner computes the
	// dissociation envelopes even for operators that cannot use them to
	// decide (expected counts, unthresholded exists, groupby). Those
	// intervals ride along on the derive tier — never reclassified to the
	// bound tier, whose threshold decisions would misfire at MinProb 0.
	_, hasDL := ctx.Deadline()

	// Order predicate evaluation by estimated selectivity: the compiled
	// satisfying fraction, sharpened by the attribute's evidence-free
	// voted marginal — one vote against the top of the lattice, computed
	// through (and memoized in) the engine's shared CPD cache, so every
	// plan after the first is served from the same slot. Ordering
	// changes evaluation cost only, never answers — satisfies is a
	// conjunction.
	p.order = append([]int(nil), q.constrained...)
	if len(p.order) > 0 {
		sel := make(map[int]float64, len(p.order))
		allMissing := relation.NewTuple(q.schema.NumAttrs())
		for _, a := range p.order {
			set := q.sat[a]
			frac := float64(set.n) / float64(len(set.ok))
			if d, _, err := eng.MarginalCPD(allMissing, a); err == nil && len(d) == len(set.ok) {
				var mass float64
				for v, in := range set.ok {
					if in {
						mass += d[v]
					}
				}
				frac = mass
			}
			sel[a] = frac
		}
		sort.SliceStable(p.order, func(i, j int) bool { return sel[p.order[i]] < sel[p.order[j]] })
		for _, a := range p.order {
			info.PredOrder = append(info.PredOrder, q.schema.Attrs[a].Name)
			info.Selectivity = append(info.Selectivity, sel[a])
		}
	}

	// Single-missing tuples take the CPD path only when the engine keeps
	// full blocks: a capped block is renormalized, so only the block
	// itself reproduces the derived answer. The same cap disables
	// dissociation bounds inside BoundCPD.
	useVote := eng.MaxAlternatives() <= 0

	// sat in the [][]bool shape BoundCPD consumes, built once per plan.
	var satBools [][]bool
	if info.BoundsUsed || hasDL {
		satBools = make([][]bool, q.schema.NumAttrs())
		for _, a := range q.constrained {
			satBools[a] = q.sat[a].ok
		}
	}

	var buf []int
	exhausted := false // deadline spent mid-plan: classify on, stop paying for envelopes
	for i, t := range rel.Tuples {
		if err := ctx.Err(); err != nil {
			// A spent deadline budget degrades planning instead of failing
			// it: the remaining tuples classify without envelope votes
			// (vacuous intervals — still sound), and the executor degrades
			// from there. Plain cancellation still aborts.
			if !hasDL || !errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			exhausted = true
		}
		c, open := q.classify(t, buf)
		if open != nil {
			buf = open[:0]
		}
		switch {
		case c == refuted:
			p.acts[i] = planned{tier: tierSkip}
			info.Refuted++
		case t.IsComplete():
			p.acts[i] = planned{tier: tierCertain, iv: derive.Interval{Lo: 1, Hi: 1}}
			info.Certain++
		case overrides[i] != nil:
			// A conditioned tuple's posterior is already materialized; its
			// satisfying mass is exact, summed in block-alternative order.
			var mass float64
			for _, a := range overrides[i].Alts {
				if p.satisfies(a.Tuple) {
					mass += a.Prob
				}
			}
			p.acts[i] = planned{tier: tierObserved, iv: derive.Interval{Lo: mass, Hi: mass}, blk: overrides[i]}
			info.Observed++
		case useVote && t.NumMissing() == 1:
			p.acts[i] = planned{tier: tierVote}
			info.SingleMissing++
		default:
			iv := derive.VacuousInterval
			if (info.BoundsUsed || hasDL) && !exhausted && t.NumMissing() > 1 {
				var err error
				if iv, err = eng.BoundCPD(t, satBools); err != nil {
					return nil, err
				}
			}
			if info.BoundsUsed && !iv.Vacuous() {
				p.acts[i] = planned{tier: tierBound, iv: iv}
				info.Bounded++
			} else {
				// The interval stays attached even when the operator cannot
				// decide from it: it is the executor's degradation fallback.
				p.acts[i] = planned{tier: tierDerive, iv: iv}
				info.Derive++
			}
		}
	}
	p.info = info
	return p, nil
}

// Plan compiles the evaluation plan of q over rel on eng without
// executing it: the selectivity-ordered predicates, the resolution-tier
// classification of every tuple, and the dissociation intervals behind
// the bound tier (whose envelope votes do run, memoized in the engine's
// shared CPD cache — so planning honors ctx). It is the -explain
// primitive and the planner's benchmark surface.
func Plan(ctx context.Context, eng *derive.Engine, rel *relation.Relation, q *Query) (*PlanInfo, error) {
	if err := validate(eng, rel, q); err != nil {
		return nil, err
	}
	pl, err := q.newPlan(ctx, eng, rel, nil)
	if err != nil {
		return nil, err
	}
	return pl.info, nil
}

// PlanSnapshot compiles the evaluation plan of q over a live dataset
// snapshot: like Plan, with the snapshot's conditioned blocks classified
// into the observed tier instead of the inference tiers.
func PlanSnapshot(ctx context.Context, eng *derive.Engine, snap *derive.DatasetSnapshot, q *Query) (*PlanInfo, error) {
	if snap == nil {
		return nil, fmt.Errorf("query: nil snapshot")
	}
	if err := validate(eng, snap.Rel, q); err != nil {
		return nil, err
	}
	pl, err := q.newPlan(ctx, eng, snap.Rel, snap.Overrides)
	if err != nil {
		return nil, err
	}
	return pl.info, nil
}

// satisfies reports whether the complete tuple u passes every predicate,
// checking the most selective attributes first.
func (p *plan) satisfies(u relation.Tuple) bool {
	for _, a := range p.order {
		if !p.q.sat[a].contains(u[a]) {
			return false
		}
	}
	return true
}
