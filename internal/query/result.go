package query

import (
	"repro/internal/derive"
	"repro/internal/relation"
)

// Row is one TopK result: a satisfying completion, its probability, and
// its provenance. Rows of equal probability keep input order (and, within
// one source tuple, the block's alternative order), so TopK output is
// bit-stable for every worker count.
type Row struct {
	// Index is the source tuple's position in the input relation.
	Index int
	// Tuple is the satisfying completion.
	Tuple relation.Tuple
	// Prob is the completion's probability (1 for certain tuples).
	Prob float64
	// Certain reports a complete input tuple (no inference involved).
	Certain bool
}

// Group is one bucket of a GroupBy histogram: the expected number of
// satisfying tuples taking the value, with the variance of that count
// (blocks contribute independent Bernoulli mass, certain tuples are
// constant).
type Group struct {
	Value    int
	Label    string
	Expected float64
	Variance float64
	// Lo and Hi bound the group's true expected count when the evaluation
	// degraded under a deadline budget (Result.Degraded): unresolved
	// tuples contribute their dissociation-interval sides instead of exact
	// mass. Zero (and omitted from JSON) for exact evaluations.
	Lo float64 `json:"Lo,omitempty"`
	Hi float64 `json:"Hi,omitempty"`
}

// Counters partition the tuples one evaluation scanned by how much
// inference each cost. Scanned = Pruned + Bounded + Derived.
type Counters struct {
	// Scanned is the number of input tuples considered.
	Scanned int64
	// Pruned tuples cost no inference at all: complete tuples, tuples
	// refuted by evidence or structure, and tuples skipped once early
	// termination made their contribution irrelevant.
	Pruned int64
	// Bounded tuples were decided without a block expansion or a Gibbs
	// chain: single-missing tuples answered from the per-attribute
	// marginal in the engine's shared CPD cache, and multi-missing tuples
	// decided by their dissociation bound interval.
	Bounded int64
	// Derived tuples were sent to full block derivation.
	Derived int64
	// BoundRefutes counts the Bounded tuples excluded by their interval's
	// upper side: Hi below the probability threshold, or below the
	// established TopK rank-k probability.
	BoundRefutes int64
	// BoundWidth accumulates the final bound-interval width per resolved
	// tuple: 0 for evidence- or CPD-decided tuples, the dissociation
	// interval's width for multi-missing tuples that received one
	// (whether it decided them or they were derived anyway), and 1 only
	// for derived tuples whose bounds stayed vacuous.
	BoundWidth float64
}

// Result is the answer of one evaluation. The populated fields depend on
// the operator; Counters and Plan are always set.
type Result struct {
	// Op echoes the evaluated operator.
	Op Op

	// Expected is the expected satisfying-tuple count (Count, no
	// threshold).
	Expected float64
	// Count is the number of tuples whose satisfaction probability
	// reached the threshold (Count with MinProb > 0).
	Count int64

	// Prob is the existence probability (Exists). When EarlyStop is set
	// it is the accumulated lower bound at the moment the threshold was
	// crossed — sound, but not the full product.
	Prob float64
	// Exists is the Exists decision: Prob > 0, or Prob >= MinProb when a
	// threshold was given.
	Exists bool
	// EarlyStop reports that evaluation ended before the full scan
	// because the answer could no longer change.
	EarlyStop bool

	// Rows are the TopK results, most probable first.
	Rows []Row

	// Groups is the GroupBy histogram, one entry per domain value.
	Groups []Group

	// Counters report the pruning achieved.
	Counters Counters

	// Plan summarizes the compiled plan the evaluation executed: the
	// selectivity-ordered predicates and the per-tier tuple counts.
	Plan *PlanInfo

	// Dissociated reports that the answer was computed over a dissociated
	// lineage: the SPJ plan was unsafe (joined rows share uncertain base
	// tuples) and the operator is sensitive to that correlation, so the
	// reported value treats the shared tuples as independent copies — an
	// upper bound on the intensional existence probability (Gatterbauer &
	// Suciu). Linear operators (expected counts, per-row topk masses,
	// groupby histograms) are exact even over unsafe plans and never set
	// it.
	Dissociated bool
	// Bounds is the sound [lo, hi] interval around the dissociated
	// existence mass for unsafe exists plans: lo is the best single-row
	// lower bound, hi folds every row's interval upper side. When the
	// interval alone decided the threshold (EarlyStop with no derivation),
	// Prob is the deciding side. Nil for safe plans and non-exists
	// operators. Degraded evaluations reuse it: it then brackets the
	// operator's scalar answer (expected count, threshold count, or
	// existence probability) around the unresolved tuples' intervals.
	Bounds *derive.Interval

	// Degraded reports that the evaluation ran out of deadline budget and
	// answered the remaining expensive tuples from their sound
	// dissociation intervals instead of deriving them. The point answer
	// fields then hold the conservative (lower-bound) side and Bounds —
	// or, for GroupBy, the per-group Lo/Hi — bracket the exact answer.
	// Never set when the context carries no deadline: evaluations without
	// a budget stay bit-identical to the derive-everything oracle.
	Degraded bool `json:"Degraded,omitempty"`
	// DegradedTuples counts the tuples answered from bounds because the
	// budget ran out (a subset of Counters.Bounded).
	DegradedTuples int64 `json:"DegradedTuples,omitempty"`
}
