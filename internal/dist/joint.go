package dist

import (
	"fmt"
	"math"
)

// Joint is a probability distribution over the Cartesian product of
// several attributes' domains. Outcomes are indexed in mixed radix with
// the last attribute varying fastest, so P[Index(vals)] is the mass of
// the combination vals.
type Joint struct {
	// Attrs are the covered attribute indices (schema positions), in the
	// order the mixed-radix index runs over them.
	Attrs []int
	// Cards are the domain cardinalities of Attrs, aligned by position.
	Cards []int
	// P holds one probability per combination.
	P Dist
}

// NewJoint returns a zero-mass joint over the given attributes and
// cardinalities.
func NewJoint(attrs, cards []int) (*Joint, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("dist: joint over no attributes")
	}
	if len(attrs) != len(cards) {
		return nil, fmt.Errorf("dist: %d attributes but %d cardinalities", len(attrs), len(cards))
	}
	size := 1
	for i, c := range cards {
		if c < 1 {
			return nil, fmt.Errorf("dist: attribute %d has cardinality %d", attrs[i], c)
		}
		if size > math.MaxInt32/c {
			return nil, fmt.Errorf("dist: joint over %v is too large", attrs)
		}
		size *= c
	}
	return &Joint{
		Attrs: append([]int(nil), attrs...),
		Cards: append([]int(nil), cards...),
		P:     Zeros(size),
	}, nil
}

// Size returns the number of outcomes (the product of the cardinalities).
func (j *Joint) Size() int { return len(j.P) }

// Clone returns a deep copy of j.
func (j *Joint) Clone() *Joint {
	return &Joint{
		Attrs: append([]int(nil), j.Attrs...),
		Cards: append([]int(nil), j.Cards...),
		P:     j.P.Clone(),
	}
}

// Index returns the outcome index of the value combination vals, which
// must align with Attrs.
func (j *Joint) Index(vals []int) int {
	idx := 0
	for i, c := range j.Cards {
		idx = idx*c + vals[i]
	}
	return idx
}

// ValuesInto decodes outcome idx into vals, which must have len(Attrs).
func (j *Joint) ValuesInto(idx int, vals []int) {
	for i := len(j.Cards) - 1; i >= 0; i-- {
		c := j.Cards[i]
		vals[i] = idx % c
		idx /= c
	}
}

// Values decodes outcome idx into a fresh slice aligned with Attrs.
func (j *Joint) Values(idx int) []int {
	vals := make([]int, len(j.Cards))
	j.ValuesInto(idx, vals)
	return vals
}

// Normalize scales the mass to sum to 1 in place and returns j.
func (j *Joint) Normalize() *Joint {
	j.P.Normalize()
	return j
}

// Smooth raises every outcome to at least floor and renormalizes,
// returning j.
func (j *Joint) Smooth(floor float64) *Joint {
	j.P.Smooth(floor)
	return j
}

// Marginal sums the joint down to the single attribute attr, which must be
// one of Attrs.
func (j *Joint) Marginal(attr int) (Dist, error) {
	pos := -1
	for i, a := range j.Attrs {
		if a == attr {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("dist: attribute %d is not covered by joint over %v", attr, j.Attrs)
	}
	out := Zeros(j.Cards[pos])
	vals := make([]int, len(j.Cards))
	for idx, p := range j.P {
		j.ValuesInto(idx, vals)
		out[vals[pos]] += p
	}
	return out, nil
}

// KLJoint returns D(truth || pred) between two joints over the same
// attributes.
func KLJoint(truth, pred *Joint) (float64, error) {
	if len(truth.Attrs) != len(pred.Attrs) {
		return 0, fmt.Errorf("dist: KLJoint over different attribute sets %v vs %v", truth.Attrs, pred.Attrs)
	}
	for i, a := range truth.Attrs {
		if pred.Attrs[i] != a {
			return 0, fmt.Errorf("dist: KLJoint over different attribute sets %v vs %v", truth.Attrs, pred.Attrs)
		}
	}
	return KL(truth.P, pred.P)
}
