// Package dist provides the discrete probability distributions the
// pipeline passes around: Dist, a distribution over one attribute's
// domain, and Joint, a distribution over the Cartesian product of several
// attributes' domains (mixed-radix indexed, last attribute varying
// fastest). Both are plain float64 slices underneath so hot paths can
// index them directly; the methods keep them normalized and positive.
package dist

import (
	"fmt"
	"math"
	"strings"
)

// SmoothFloor is the minimum probability smoothing raises values to, so
// downstream log-likelihoods and KL divergences stay finite.
const SmoothFloor = 1e-6

// Dist is a probability distribution over a single discrete domain.
type Dist []float64

// New returns the uniform distribution over n values.
func New(n int) Dist {
	d := make(Dist, n)
	u := 1.0 / float64(n)
	for i := range d {
		d[i] = u
	}
	return d
}

// Zeros returns an all-zero vector over n values (a tally, not yet a
// distribution).
func Zeros(n int) Dist { return make(Dist, n) }

// Clone returns a copy of d.
func (d Dist) Clone() Dist {
	out := make(Dist, len(d))
	copy(out, d)
	return out
}

// Sum returns the total mass of d.
func (d Dist) Sum() float64 {
	var s float64
	for _, p := range d {
		s += p
	}
	return s
}

// Normalize scales d in place to sum to 1 and returns it. A vector with
// no positive mass becomes uniform.
func (d Dist) Normalize() Dist {
	s := d.Sum()
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1.0 / float64(len(d))
		for i := range d {
			d[i] = u
		}
		return d
	}
	for i := range d {
		d[i] /= s
	}
	return d
}

// Smooth raises every value to at least floor and renormalizes, in place,
// returning d. It guarantees a positive distribution.
func (d Dist) Smooth(floor float64) Dist {
	for i := range d {
		if d[i] < floor {
			d[i] = floor
		}
	}
	return d.Normalize()
}

// IsPositive reports whether every value is strictly positive.
func (d Dist) IsPositive() bool {
	for _, p := range d {
		if p <= 0 {
			return false
		}
	}
	return len(d) > 0
}

// IsNormalized reports whether the mass sums to 1 within eps.
func (d Dist) IsNormalized(eps float64) bool {
	return math.Abs(d.Sum()-1) <= eps
}

// ArgMax returns the index of the largest value (the first on ties).
func (d Dist) ArgMax() int {
	best := 0
	for i := 1; i < len(d); i++ {
		if d[i] > d[best] {
			best = i
		}
	}
	return best
}

// Sample inverts the CDF at u (uniform in [0,1)): it returns the smallest
// index whose cumulative mass exceeds u. Out-of-range u falls back to the
// last value, so callers never index past the domain.
func (d Dist) Sample(u float64) int {
	acc := 0.0
	for i, p := range d {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(d) - 1
}

// String renders the distribution compactly, e.g. "[0.25 0.75]".
func (d Dist) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, p := range d {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f", p)
	}
	b.WriteByte(']')
	return b.String()
}

// Entropy returns the Shannon entropy of d in nats; zero-probability
// values contribute nothing.
func (d Dist) Entropy() float64 {
	var h float64
	for _, p := range d {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// KL returns the Kullback-Leibler divergence D(truth || pred) in nats.
// Values where truth has no mass contribute nothing; where truth has mass
// but pred does not, the divergence is +Inf.
func KL(truth, pred Dist) (float64, error) {
	if len(truth) != len(pred) {
		return 0, fmt.Errorf("dist: KL over mismatched domains (%d vs %d)", len(truth), len(pred))
	}
	var kl float64
	for i, p := range truth {
		if p <= 0 {
			continue
		}
		if pred[i] <= 0 {
			return math.Inf(1), nil
		}
		kl += p * math.Log(p/pred[i])
	}
	if kl < 0 {
		// Floating-point slop on near-identical distributions.
		kl = 0
	}
	return kl, nil
}

// L1 returns the total variation numerator: the sum of absolute
// differences between a and b.
func L1(a, b Dist) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dist: L1 over mismatched domains (%d vs %d)", len(a), len(b))
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s, nil
}

// Top1Match reports whether truth and pred agree on the most probable
// value (the paper's top-1 accuracy criterion).
func Top1Match(truth, pred Dist) (bool, error) {
	if len(truth) != len(pred) {
		return false, fmt.Errorf("dist: Top1Match over mismatched domains (%d vs %d)", len(truth), len(pred))
	}
	if len(truth) == 0 {
		return false, fmt.Errorf("dist: Top1Match over empty distributions")
	}
	return truth.ArgMax() == pred.ArgMax(), nil
}
