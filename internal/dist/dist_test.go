package dist

import (
	"math"
	"testing"
)

func TestNewIsUniform(t *testing.T) {
	d := New(4)
	for i, p := range d {
		if math.Abs(p-0.25) > 1e-12 {
			t.Errorf("New(4)[%d] = %v, want 0.25", i, p)
		}
	}
	if !d.IsNormalized(1e-12) || !d.IsPositive() {
		t.Errorf("New(4) = %v is not a distribution", d)
	}
}

func TestNormalize(t *testing.T) {
	d := Dist{1, 3}
	d.Normalize()
	if math.Abs(d[0]-0.25) > 1e-12 || math.Abs(d[1]-0.75) > 1e-12 {
		t.Errorf("normalized = %v", d)
	}
	z := Zeros(3)
	z.Normalize()
	for _, p := range z {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Errorf("zero vector should normalize to uniform, got %v", z)
		}
	}
}

func TestSmooth(t *testing.T) {
	d := Dist{0, 1}
	d.Smooth(SmoothFloor)
	if !d.IsPositive() || !d.IsNormalized(1e-9) {
		t.Errorf("smoothed = %v", d)
	}
	if d[0] <= 0 || d[0] > 2*SmoothFloor {
		t.Errorf("floor value = %v", d[0])
	}
}

func TestArgMaxAndSample(t *testing.T) {
	d := Dist{0.1, 0.6, 0.3}
	if d.ArgMax() != 1 {
		t.Errorf("ArgMax = %d, want 1", d.ArgMax())
	}
	if got := d.Sample(0.05); got != 0 {
		t.Errorf("Sample(0.05) = %d, want 0", got)
	}
	if got := d.Sample(0.5); got != 1 {
		t.Errorf("Sample(0.5) = %d, want 1", got)
	}
	if got := d.Sample(0.99); got != 2 {
		t.Errorf("Sample(0.99) = %d, want 2", got)
	}
	// Out-of-range u (possible only through float slop) stays in range.
	if got := d.Sample(1.5); got != 2 {
		t.Errorf("Sample(1.5) = %d, want 2", got)
	}
}

func TestKL(t *testing.T) {
	u := New(2)
	if kl, err := KL(u, u.Clone()); err != nil || kl != 0 {
		t.Errorf("KL(u,u) = %v, %v", kl, err)
	}
	p := Dist{0.9, 0.1}
	kl, err := KL(p, u)
	if err != nil || kl <= 0 {
		t.Errorf("KL(p,u) = %v, %v, want > 0", kl, err)
	}
	if _, err := KL(p, New(3)); err == nil {
		t.Error("mismatched domains should fail")
	}
	inf, err := KL(Dist{1, 0}, Dist{0, 1})
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("KL with unsupported mass = %v, %v, want +Inf", inf, err)
	}
}

func TestL1AndTop1(t *testing.T) {
	a, b := Dist{0.2, 0.8}, Dist{0.4, 0.6}
	l1, err := L1(a, b)
	if err != nil || math.Abs(l1-0.4) > 1e-12 {
		t.Errorf("L1 = %v, %v", l1, err)
	}
	if _, err := L1(a, New(3)); err == nil {
		t.Error("mismatched L1 should fail")
	}
	match, err := Top1Match(a, b)
	if err != nil || !match {
		t.Errorf("Top1Match = %v, %v, want true", match, err)
	}
	match, err = Top1Match(a, Dist{0.7, 0.3})
	if err != nil || match {
		t.Errorf("Top1Match = %v, %v, want false", match, err)
	}
	if _, err := Top1Match(a, New(3)); err == nil {
		t.Error("mismatched Top1Match should fail")
	}
}

func TestEntropy(t *testing.T) {
	if h := (Dist{1, 0}).Entropy(); h != 0 {
		t.Errorf("deterministic entropy = %v", h)
	}
	if h := New(4).Entropy(); math.Abs(h-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %v, want ln 4", h)
	}
}

func TestNewJointValidation(t *testing.T) {
	if _, err := NewJoint(nil, nil); err == nil {
		t.Error("empty joint should fail")
	}
	if _, err := NewJoint([]int{0}, []int{2, 3}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := NewJoint([]int{0}, []int{0}); err == nil {
		t.Error("zero cardinality should fail")
	}
}

func TestJointIndexRoundTrip(t *testing.T) {
	j, err := NewJoint([]int{1, 3}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 6 {
		t.Fatalf("size = %d, want 6", j.Size())
	}
	seen := make(map[int]bool)
	for v0 := 0; v0 < 2; v0++ {
		for v1 := 0; v1 < 3; v1++ {
			idx := j.Index([]int{v0, v1})
			if idx < 0 || idx >= j.Size() || seen[idx] {
				t.Fatalf("Index(%d,%d) = %d invalid or duplicate", v0, v1, idx)
			}
			seen[idx] = true
			got := j.Values(idx)
			if got[0] != v0 || got[1] != v1 {
				t.Errorf("Values(%d) = %v, want [%d %d]", idx, got, v0, v1)
			}
		}
	}
	// Last attribute varies fastest (mixed radix).
	if j.Index([]int{0, 1}) != 1 {
		t.Errorf("Index(0,1) = %d, want 1", j.Index([]int{0, 1}))
	}
}

func TestJointMarginal(t *testing.T) {
	j, err := NewJoint([]int{2, 5}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// P(a=0,b=0)=0.1 P(0,1)=0.2 P(1,0)=0.3 P(1,1)=0.4
	copy(j.P, []float64{0.1, 0.2, 0.3, 0.4})
	ma, err := j.Marginal(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ma[0]-0.3) > 1e-12 || math.Abs(ma[1]-0.7) > 1e-12 {
		t.Errorf("marginal of attr 2 = %v", ma)
	}
	mb, err := j.Marginal(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mb[0]-0.4) > 1e-12 || math.Abs(mb[1]-0.6) > 1e-12 {
		t.Errorf("marginal of attr 5 = %v", mb)
	}
	if _, err := j.Marginal(7); err == nil {
		t.Error("uncovered attribute should fail")
	}
}

func TestJointCloneIsDeep(t *testing.T) {
	j, err := NewJoint([]int{0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	copy(j.P, []float64{0.5, 0.5})
	c := j.Clone()
	c.P[0] = 0
	c.Attrs[0] = 9
	if j.P[0] != 0.5 || j.Attrs[0] != 0 {
		t.Error("Clone shares storage with the original")
	}
}

func TestKLJoint(t *testing.T) {
	a, _ := NewJoint([]int{0, 1}, []int{2, 2})
	b, _ := NewJoint([]int{0, 1}, []int{2, 2})
	copy(a.P, []float64{0.25, 0.25, 0.25, 0.25})
	copy(b.P, []float64{0.25, 0.25, 0.25, 0.25})
	if kl, err := KLJoint(a, b); err != nil || kl != 0 {
		t.Errorf("KLJoint(u,u) = %v, %v", kl, err)
	}
	c, _ := NewJoint([]int{0, 2}, []int{2, 2})
	if _, err := KLJoint(a, c); err == nil {
		t.Error("different attribute sets should fail")
	}
}
