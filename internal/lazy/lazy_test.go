package lazy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bn"
	"repro/internal/core"
	"repro/internal/pdb"
	"repro/internal/relation"
	"repro/internal/vote"
)

func bestAveraged() vote.Method {
	return vote.Method{Choice: core.BestVoters, Scheme: vote.Averaged}
}

// fixture learns a model over BN8 and builds a mixed relation of complete
// and incomplete tuples.
func fixture(t *testing.T, seed int64) (*core.Model, *relation.Relation, *bn.Instance) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, 8000)
	m, err := core.Learn(train, core.Config{SupportThreshold: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	rel := relation.NewRelation(train.Schema)
	for i := 0; i < 200; i++ {
		tu := inst.Sample(rng)
		switch {
		case i%4 == 1:
			tu[rng.Intn(4)] = relation.Missing
		case i%4 == 2:
			perm := rng.Perm(4)
			tu[perm[0]] = relation.Missing
			tu[perm[1]] = relation.Missing
		}
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	return m, rel, inst
}

func TestNewValidation(t *testing.T) {
	m, rel, _ := fixture(t, 81)
	if _, err := New(nil, rel, Config{}); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := New(m, nil, Config{}); err == nil {
		t.Error("nil relation should fail")
	}
	other := relation.NewRelation(relation.MustSchema([]relation.Attribute{
		{Name: "z", Domain: []string{"0", "1"}},
	}))
	if _, err := New(m, other, Config{}); err == nil {
		t.Error("schema mismatch should fail")
	}
}

func TestExpectedCountValidatesQuery(t *testing.T) {
	m, rel, _ := fixture(t, 82)
	db, err := New(m, rel, Config{Method: bestAveraged(), Samples: 200, BurnIn: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExpectedCount(nil); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := db.ExpectedCount(pdb.ConjQuery{{Attr: 9, Value: 0}}); err == nil {
		t.Error("invalid query should fail")
	}
}

// TestLazySkipsDecidedTuples: a query over one attribute only triggers
// inference for tuples where that attribute is missing.
func TestLazySkipsDecidedTuples(t *testing.T) {
	m, rel, _ := fixture(t, 83)
	db, err := New(m, rel, Config{Method: bestAveraged(), Samples: 200, BurnIn: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := pdb.ConjQuery{{Attr: 0, Value: 1}}
	if _, err := db.ExpectedCount(q); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	// Tuples where attr 0 is known were decided without inference.
	var knownAttr0 int
	for _, tu := range rel.Tuples {
		if tu[0] != relation.Missing {
			knownAttr0++
		}
	}
	if st.Refuted+st.Entailed != knownAttr0 {
		t.Errorf("decided = %d, want %d (known attr-0 tuples)",
			st.Refuted+st.Entailed, knownAttr0)
	}
	if st.GibbsRuns != 0 {
		t.Errorf("single-condition query ran %d Gibbs inferences", st.GibbsRuns)
	}
	if st.SingleLookups == 0 {
		t.Error("no single lookups recorded")
	}
}

// TestLazyCountMatchesEagerDerive: lazy expected counts agree with fully
// materializing the database and using pdb's evaluator (within Gibbs
// noise on the multi-missing tuples).
func TestLazyCountMatchesEagerDerive(t *testing.T) {
	m, rel, _ := fixture(t, 84)
	db, err := New(m, rel, Config{Method: bestAveraged(), Samples: 1500, BurnIn: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := pdb.ConjQuery{{Attr: 0, Value: 1}, {Attr: 3, Value: 0}}
	lazyCount, err := db.ExpectedCount(q)
	if err != nil {
		t.Fatal(err)
	}

	// Eager path: materialize every incomplete tuple into a block.
	eager := pdb.NewDatabase(rel.Schema)
	for _, tu := range rel.Tuples {
		if tu.IsComplete() {
			if err := eager.AddCertain(tu); err != nil {
				t.Fatal(err)
			}
			continue
		}
		blk, err := db.Materialize(tu, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := eager.AddBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	eagerCount := eager.ExpectedCount(q.Predicate())
	if math.Abs(lazyCount-eagerCount) > 1.0 {
		t.Errorf("lazy %v vs eager %v", lazyCount, eagerCount)
	}
}

// TestLazyAgainstGroundTruth: on decided tuples the count is exact; on open
// ones the probability mass tracks the generating network, so the total
// should land near the true count of the hidden data.
func TestLazyAgainstGroundTruth(t *testing.T) {
	m, rel, inst := fixture(t, 85)
	db, err := New(m, rel, Config{Method: bestAveraged(), Samples: 1500, BurnIn: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := pdb.ConjQuery{{Attr: 1, Value: 0}}
	got, err := db.ExpectedCount(q)
	if err != nil {
		t.Fatal(err)
	}
	// True expectation: decided tuples contribute exactly; open tuples
	// contribute the network's conditional probability.
	var want float64
	for _, tu := range rel.Tuples {
		outcome, _ := q.EvalKnown(tu)
		switch outcome {
		case pdb.Refuted:
		case pdb.Entailed:
			want++
		default:
			cond, err := inst.ConditionalSingle(tu, 1)
			if err != nil {
				t.Fatal(err)
			}
			want += cond[0]
		}
	}
	if math.Abs(got-want) > float64(rel.Len())*0.05 {
		t.Errorf("expected count %v, ground-truth %v", got, want)
	}
}

func TestCacheAmortizesRepeatedQueries(t *testing.T) {
	m, rel, _ := fixture(t, 86)
	db, err := New(m, rel, Config{Method: bestAveraged(), Samples: 150, BurnIn: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := pdb.ConjQuery{{Attr: 0, Value: 0}, {Attr: 1, Value: 1}}
	if _, err := db.ExpectedCount(q); err != nil {
		t.Fatal(err)
	}
	first := db.Stats()
	if _, err := db.ExpectedCount(q); err != nil {
		t.Fatal(err)
	}
	second := db.Stats()
	if second.GibbsRuns != first.GibbsRuns || second.SingleLookups != first.SingleLookups {
		t.Errorf("second query re-ran inference: %+v -> %+v", first, second)
	}
	if second.CacheHits <= first.CacheHits {
		t.Error("second query produced no cache hits")
	}
}

func TestMaterialize(t *testing.T) {
	m, rel, _ := fixture(t, 87)
	db, err := New(m, rel, Config{Method: bestAveraged(), Samples: 300, BurnIn: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(relation.Tuple{0, 0, 0, 0}, 0); err == nil {
		t.Error("complete tuple should fail")
	}
	mTuple := relation.Tuple{relation.Missing, 0, 0, 0}
	blk, err := db.Materialize(mTuple, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Alts) == 0 || math.Abs(blk.ProbSum()-1) > 1e-6 {
		t.Errorf("bad single-missing block: %+v", blk)
	}
	m2 := relation.Tuple{relation.Missing, relation.Missing, 0, 0}
	blk2, err := db.Materialize(m2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk2.Alts) > 2 {
		t.Errorf("maxAlts ignored: %d alternatives", len(blk2.Alts))
	}
}
