// Package lazy implements the paper's closing future-work proposal:
// "partial materialization of probability values, as well as lazy,
// query-targeted learning and inference" (Section VIII). Instead of
// deriving a block of completions for every incomplete tuple up front, a
// lazy database answers structured queries by classifying each incomplete
// tuple against the query's conditions: tuples whose known values already
// refute or entail the query cost nothing, tuples with one open condition
// are resolved by a single voted CPD lookup, and only tuples with several
// open conditions pay for Gibbs sampling. Inferred distributions are
// memoized, so repeated queries amortize — the partial materialization the
// paper anticipates.
package lazy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/pdb"
	"repro/internal/relation"
	"repro/internal/vote"
)

// Config tunes lazy inference.
type Config struct {
	// Method is the voting method for local CPDs and single-attribute
	// resolutions.
	Method vote.Method
	// Samples and BurnIn configure Gibbs for multi-attribute resolutions;
	// Samples <= 0 defaults to 1000.
	Samples int
	BurnIn  int
	// Seed anchors the sampler.
	Seed int64
}

// Stats counts the work a lazy database has (and has not) performed.
type Stats struct {
	// Refuted and Entailed count query/tuple pairs decided from known
	// values alone.
	Refuted, Entailed int
	// SingleLookups counts single-attribute CPD resolutions.
	SingleLookups int
	// GibbsRuns counts multi-attribute Gibbs inferences.
	GibbsRuns int
	// CacheHits counts memoized reuses of previously inferred
	// distributions.
	CacheHits int
}

// DB is a lazily derived probabilistic database over an incomplete
// relation.
type DB struct {
	model *core.Model
	rel   *relation.Relation
	cfg   Config

	sampler *gibbs.Sampler

	// singles memoizes voted CPDs keyed by tuple key + attribute.
	singles map[string]dist.Dist
	// joints memoizes Gibbs joints keyed by tuple key.
	joints map[string]*dist.Joint

	stats Stats
}

// New wraps a model and relation into a lazy database.
func New(m *core.Model, rel *relation.Relation, cfg Config) (*DB, error) {
	if m == nil || rel == nil {
		return nil, fmt.Errorf("lazy: nil model or relation")
	}
	if m.Schema.NumAttrs() != rel.Schema.NumAttrs() {
		return nil, fmt.Errorf("lazy: schema mismatch (%d vs %d attributes)",
			m.Schema.NumAttrs(), rel.Schema.NumAttrs())
	}
	samples := cfg.Samples
	if samples <= 0 {
		samples = 1000
	}
	s, err := gibbs.New(m, gibbs.Config{
		Samples: samples,
		BurnIn:  cfg.BurnIn,
		Method:  cfg.Method,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &DB{
		model:   m,
		rel:     rel,
		cfg:     cfg,
		sampler: s,
		singles: make(map[string]dist.Dist),
		joints:  make(map[string]*dist.Joint),
	}, nil
}

// Stats returns the accumulated work counters.
func (db *DB) Stats() Stats { return db.stats }

// ExpectedCount evaluates the expected number of tuples satisfying the
// conjunctive query, deriving probability values only where the query
// forces it.
func (db *DB) ExpectedCount(q pdb.ConjQuery) (float64, error) {
	if err := q.Validate(db.rel.Schema); err != nil {
		return 0, err
	}
	var total float64
	for _, t := range db.rel.Tuples {
		p, err := db.TupleProb(t, q)
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total, nil
}

// TupleProb returns the probability that tuple t satisfies the query.
// Complete tuples are evaluated directly; incomplete tuples are classified
// against the query's conditions first, and only Open tuples trigger
// inference.
func (db *DB) TupleProb(t relation.Tuple, q pdb.ConjQuery) (float64, error) {
	outcome, openAttrs := q.EvalKnown(t)
	switch outcome {
	case pdb.Refuted:
		db.stats.Refuted++
		return 0, nil
	case pdb.Entailed:
		db.stats.Entailed++
		return 1, nil
	}
	// Open: probability that the open attributes take the queried values.
	want := make(map[int]int, len(q))
	for _, c := range q {
		want[c.Attr] = c.Value
	}
	if len(openAttrs) == 1 {
		attr := openAttrs[0]
		d, err := db.singleCPD(t, attr)
		if err != nil {
			return 0, err
		}
		return d[want[attr]], nil
	}
	j, err := db.jointDist(t)
	if err != nil {
		return 0, err
	}
	// Sum joint mass over outcomes where every open attribute matches.
	var p float64
	vals := make([]int, len(j.Attrs))
	for idx, mass := range j.P {
		j.ValuesInto(idx, vals)
		ok := true
		for i, a := range j.Attrs {
			if wantVal, queried := want[a]; queried && vals[i] != wantVal {
				ok = false
				break
			}
		}
		if ok {
			p += mass
		}
	}
	return p, nil
}

// singleCPD memoizes vote.Infer per (tuple, attribute).
func (db *DB) singleCPD(t relation.Tuple, attr int) (dist.Dist, error) {
	key := fmt.Sprintf("%s#%d", t.Key(), attr)
	if d, ok := db.singles[key]; ok {
		db.stats.CacheHits++
		return d, nil
	}
	d, err := vote.Infer(db.model, t, attr, db.cfg.Method)
	if err != nil {
		return nil, err
	}
	db.stats.SingleLookups++
	db.singles[key] = d
	return d, nil
}

// jointDist memoizes Gibbs joints per tuple.
func (db *DB) jointDist(t relation.Tuple) (*dist.Joint, error) {
	key := t.Key()
	if j, ok := db.joints[key]; ok {
		db.stats.CacheHits++
		return j, nil
	}
	j, err := db.sampler.InferTuple(t)
	if err != nil {
		return nil, err
	}
	db.stats.GibbsRuns++
	db.joints[key] = j
	return j, nil
}

// Materialize eagerly derives the block for one incomplete tuple (the
// "partial materialization" knob: callers can precompute hot tuples and
// leave the cold ones lazy).
func (db *DB) Materialize(t relation.Tuple, maxAlts int) (*pdb.Block, error) {
	missing := t.MissingAttrs()
	switch len(missing) {
	case 0:
		return nil, fmt.Errorf("lazy: tuple %v is complete", t)
	case 1:
		attr := missing[0]
		d, err := db.singleCPD(t, attr)
		if err != nil {
			return nil, err
		}
		j, err := dist.NewJoint([]int{attr}, []int{db.model.Schema.Attrs[attr].Card()})
		if err != nil {
			return nil, err
		}
		copy(j.P, d)
		return pdb.NewBlock(t, j, maxAlts)
	default:
		j, err := db.jointDist(t)
		if err != nil {
			return nil, err
		}
		return pdb.NewBlock(t, j, maxAlts)
	}
}
