// Package lazy implements the paper's closing future-work proposal:
// "partial materialization of probability values, as well as lazy,
// query-targeted learning and inference" (Section VIII). Instead of
// deriving a block of completions for every incomplete tuple up front, a
// lazy database answers structured queries by classifying each incomplete
// tuple against the query's conditions: tuples whose known values already
// refute or entail the query cost nothing, tuples with one open condition
// are resolved by a single voted CPD lookup, and only tuples with several
// open conditions pay for Gibbs sampling.
//
// Since the engine-native query subsystem (internal/query) landed, a DB
// is a thin adapter over a private derive.Engine: the voted-CPD and joint
// memos that used to live here are the engine's shared caches, so the
// partial materialization the paper anticipates is the same storage the
// serving and query paths amortize into. Unlike internal/query — whose
// contract is bit-identity with full derivation — TupleProb keeps this
// package's historical approximate semantics: a tuple with exactly one
// open condition attribute is answered from the voted marginal CPD even
// when other, unqueried attributes are missing too.
package lazy

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/pdb"
	"repro/internal/relation"
	"repro/internal/vote"
)

// Config tunes lazy inference.
type Config struct {
	// Method is the voting method for local CPDs and single-attribute
	// resolutions.
	Method vote.Method
	// Samples and BurnIn configure Gibbs for multi-attribute resolutions;
	// Samples <= 0 defaults to 1000.
	Samples int
	BurnIn  int
	// Seed anchors the sampler.
	Seed int64
}

// Stats counts the work a lazy database has (and has not) performed.
type Stats struct {
	// Refuted and Entailed count query/tuple pairs decided from known
	// values alone.
	Refuted, Entailed int
	// SingleLookups counts single-attribute CPD resolutions.
	SingleLookups int
	// GibbsRuns counts multi-attribute Gibbs inferences.
	GibbsRuns int
	// CacheHits counts reuses of previously inferred distributions,
	// served from the underlying engine's shared caches.
	CacheHits int
}

// DB is a lazily derived probabilistic database over an incomplete
// relation, backed by a derivation engine whose caches persist across
// queries.
type DB struct {
	model *core.Model
	rel   *relation.Relation
	cfg   Config

	eng *derive.Engine

	stats Stats
}

// New wraps a model and relation into a lazy database.
func New(m *core.Model, rel *relation.Relation, cfg Config) (*DB, error) {
	if m == nil || rel == nil {
		return nil, fmt.Errorf("lazy: nil model or relation")
	}
	if m.Schema.NumAttrs() != rel.Schema.NumAttrs() {
		return nil, fmt.Errorf("lazy: schema mismatch (%d vs %d attributes)",
			m.Schema.NumAttrs(), rel.Schema.NumAttrs())
	}
	samples := cfg.Samples
	if samples <= 0 {
		samples = 1000
	}
	// Per-tuple content-seeded chains (GibbsWorkers 1), so a joint's
	// estimate does not depend on which query resolved it first.
	eng, err := derive.New(m, derive.Config{
		Method: cfg.Method,
		Gibbs: gibbs.Config{
			Samples: samples,
			BurnIn:  cfg.BurnIn,
			Method:  cfg.Method,
			Seed:    cfg.Seed,
		},
		GibbsWorkers: 1,
	})
	if err != nil {
		return nil, err
	}
	return &DB{model: m, rel: rel, cfg: cfg, eng: eng}, nil
}

// Stats returns the accumulated work counters.
func (db *DB) Stats() Stats { return db.stats }

// ExpectedCount evaluates the expected number of tuples satisfying the
// conjunctive query, deriving probability values only where the query
// forces it.
func (db *DB) ExpectedCount(q pdb.ConjQuery) (float64, error) {
	if err := q.Validate(db.rel.Schema); err != nil {
		return 0, err
	}
	var total float64
	for _, t := range db.rel.Tuples {
		p, err := db.TupleProb(t, q)
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total, nil
}

// TupleProb returns the probability that tuple t satisfies the query.
// Complete tuples are evaluated directly; incomplete tuples are classified
// against the query's conditions first, and only Open tuples trigger
// inference.
func (db *DB) TupleProb(t relation.Tuple, q pdb.ConjQuery) (float64, error) {
	outcome, openAttrs := q.EvalKnown(t)
	switch outcome {
	case pdb.Refuted:
		db.stats.Refuted++
		return 0, nil
	case pdb.Entailed:
		db.stats.Entailed++
		return 1, nil
	}
	if len(openAttrs) == 1 {
		attr := openAttrs[0]
		d, err := db.singleCPD(t, attr)
		if err != nil {
			return 0, err
		}
		for _, c := range q {
			if c.Attr == attr {
				return d[c.Value], nil
			}
		}
	}
	// Several open conditions: only the joint over the missing attributes
	// decides; the engine's block is its expanded form.
	b, err := db.block(t)
	if err != nil {
		return 0, err
	}
	pred := q.Predicate()
	var p float64
	for _, a := range b.Alts {
		if pred(a.Tuple) {
			p += a.Prob
		}
	}
	return p, nil
}

// singleCPD resolves the voted CPD of one missing attribute through the
// engine's shared local-CPD cache.
func (db *DB) singleCPD(t relation.Tuple, attr int) (dist.Dist, error) {
	d, hit, err := db.eng.MarginalCPD(t, attr)
	if err != nil {
		return nil, err
	}
	if hit {
		db.stats.CacheHits++
	} else {
		db.stats.SingleLookups++
	}
	return d, nil
}

// block resolves the completion block of a multi-missing tuple through
// the engine's joint cache.
func (db *DB) block(t relation.Tuple) (*pdb.Block, error) {
	b, hit, err := db.eng.ResolveBlock(context.Background(), t)
	if err != nil {
		return nil, err
	}
	if hit {
		db.stats.CacheHits++
	} else {
		db.stats.GibbsRuns++
	}
	return b, nil
}

// Materialize eagerly derives the block for one incomplete tuple (the
// "partial materialization" knob: callers can precompute hot tuples and
// leave the cold ones lazy).
func (db *DB) Materialize(t relation.Tuple, maxAlts int) (*pdb.Block, error) {
	missing := t.MissingAttrs()
	switch len(missing) {
	case 0:
		return nil, fmt.Errorf("lazy: tuple %v is complete", t)
	case 1:
		attr := missing[0]
		d, err := db.singleCPD(t, attr)
		if err != nil {
			return nil, err
		}
		j, err := dist.NewJoint([]int{attr}, []int{db.model.Schema.Attrs[attr].Card()})
		if err != nil {
			return nil, err
		}
		copy(j.P, d)
		return pdb.NewBlock(t, j, maxAlts)
	default:
		b, err := db.block(t)
		if err != nil {
			return nil, err
		}
		return capBlock(b, maxAlts), nil
	}
}

// capBlock keeps the maxAlts most probable alternatives of an engine
// block, renormalized, without mutating the shared original.
func capBlock(b *pdb.Block, maxAlts int) *pdb.Block {
	if maxAlts <= 0 || len(b.Alts) <= maxAlts {
		return b
	}
	kept := make([]pdb.Alternative, maxAlts)
	copy(kept, b.Alts[:maxAlts])
	var s float64
	for _, a := range kept {
		s += a.Prob
	}
	for i := range kept {
		kept[i].Prob /= s // alternatives always carry positive mass
	}
	return &pdb.Block{Base: b.Base, Alts: kept}
}
