package pdb

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/relation"
)

func TestTopKWorldsValidation(t *testing.T) {
	db := buildTestDB(t)
	if _, err := db.TopKWorlds(0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestTopKWorldsEmptyDatabase(t *testing.T) {
	db := NewDatabase(twoAttrSchema(t))
	worlds, err := db.TopKWorlds(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 1 || worlds[0].Prob != 1 {
		t.Errorf("empty db worlds = %+v", worlds)
	}
}

// TestTopKWorldsMatchesEnumeration: best-first search returns exactly the
// k most probable worlds that brute-force enumeration finds.
func TestTopKWorldsMatchesEnumeration(t *testing.T) {
	db := buildTestDB(t)
	all, err := db.EnumerateWorlds(1000)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Prob > all[j].Prob })
	for _, k := range []int{1, 2, 3, 4, 10} {
		got, err := db.TopKWorlds(k)
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			t.Fatalf("k=%d: %d worlds, want %d", k, len(got), want)
		}
		for i := range got {
			if math.Abs(got[i].Prob-all[i].Prob) > 1e-12 {
				t.Errorf("k=%d world %d: prob %v, want %v", k, i, got[i].Prob, all[i].Prob)
			}
		}
		// Descending order.
		for i := 1; i < len(got); i++ {
			if got[i].Prob > got[i-1].Prob+1e-12 {
				t.Errorf("k=%d: worlds not in descending order", k)
			}
		}
	}
}

// TestTopKWorldsAgreesWithMostProbableWorld.
func TestTopKWorldsTopIsMostProbable(t *testing.T) {
	db := buildTestDB(t)
	top, err := db.TopKWorlds(1)
	if err != nil {
		t.Fatal(err)
	}
	mp := db.MostProbableWorld()
	if math.Abs(top[0].Prob-mp.Prob) > 1e-12 {
		t.Errorf("top world %v vs MostProbableWorld %v", top[0].Prob, mp.Prob)
	}
}

// TestTopKWorldsWideDatabase: log-space scoring survives many blocks where
// naive products underflow gradually.
func TestTopKWorldsWideDatabase(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "x", Domain: []string{"0", "1"}},
	})
	db := NewDatabase(s)
	m := relation.Missing
	for i := 0; i < 200; i++ {
		j, err := dist.NewJoint([]int{0}, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		j.P = dist.Dist{0.9, 0.1}
		blk, err := NewBlock(relation.Tuple{m}, j, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	worlds, err := db.TopKWorlds(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 3 {
		t.Fatalf("worlds = %d", len(worlds))
	}
	// Best world: all rank 0, prob 0.9^200.
	want := math.Pow(0.9, 200)
	if math.Abs(worlds[0].Prob-want)/want > 1e-6 {
		t.Errorf("best world prob %v, want %v", worlds[0].Prob, want)
	}
	// Second-best: exactly one block at rank 1: 0.9^199 * 0.1.
	want2 := math.Pow(0.9, 199) * 0.1
	if math.Abs(worlds[1].Prob-want2)/want2 > 1e-6 {
		t.Errorf("second world prob %v, want %v", worlds[1].Prob, want2)
	}
	// Probabilities descending and distinct choices.
	if worlds[1].Prob > worlds[0].Prob || worlds[2].Prob > worlds[1].Prob {
		t.Error("not descending")
	}
}

func TestWorldChoiceKeyDistinct(t *testing.T) {
	a := key([]int{1, 2, 3})
	b := key([]int{1, 2, 4})
	c := key([]int{12, 3})
	if a == b || a == c {
		t.Error("key collisions")
	}
	// Large ranks exercise the varint path.
	if key([]int{300}) == key([]int{44, 2}) {
		t.Error("varint key collision")
	}
}
