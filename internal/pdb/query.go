package pdb

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Structured queries. Function predicates (Predicate) are opaque — fine for
// evaluating a materialized database, but useless for reasoning about what
// needs to be materialized at all. Cond/ConjQuery express the
// equality-conjunction fragment structurally, which both the evaluator here
// and the lazy query-targeted deriver (package lazy) exploit.

// Cond is one equality condition attr = value.
type Cond struct {
	Attr  int
	Value int
}

// ConjQuery is a conjunction of equality conditions over distinct
// attributes.
type ConjQuery []Cond

// Validate checks attribute ranges and duplicate-free conditions.
func (q ConjQuery) Validate(s *relation.Schema) error {
	if len(q) == 0 {
		return fmt.Errorf("pdb: empty query")
	}
	seen := make(map[int]bool, len(q))
	for _, c := range q {
		if c.Attr < 0 || c.Attr >= s.NumAttrs() {
			return fmt.Errorf("pdb: condition attribute %d out of range", c.Attr)
		}
		if c.Value < 0 || c.Value >= s.Attrs[c.Attr].Card() {
			return fmt.Errorf("pdb: condition value %d out of range for %q",
				c.Value, s.Attrs[c.Attr].Name)
		}
		if seen[c.Attr] {
			return fmt.Errorf("pdb: duplicate condition on attribute %q", s.Attrs[c.Attr].Name)
		}
		seen[c.Attr] = true
	}
	return nil
}

// Predicate converts the structured query into an opaque predicate.
func (q ConjQuery) Predicate() Predicate {
	return func(t relation.Tuple) bool {
		for _, c := range q {
			if t[c.Attr] != c.Value {
				return false
			}
		}
		return true
	}
}

// EvalKnown classifies an incomplete tuple against the query using only
// its known values: the query is Refuted if a known value conflicts,
// Entailed if every condition is satisfied by known values, and Open
// otherwise (conditions touch missing attributes).
type EvalOutcome int

const (
	// Refuted: no completion of the tuple can satisfy the query.
	Refuted EvalOutcome = iota
	// Entailed: every completion of the tuple satisfies the query.
	Entailed
	// Open: satisfaction depends on the missing values.
	Open
)

// EvalKnown classifies t against q; openAttrs lists the query attributes
// that are missing in t (only meaningful for Open).
func (q ConjQuery) EvalKnown(t relation.Tuple) (outcome EvalOutcome, openAttrs []int) {
	for _, c := range q {
		switch t[c.Attr] {
		case relation.Missing:
			openAttrs = append(openAttrs, c.Attr)
		case c.Value:
			// satisfied by a known value
		default:
			return Refuted, nil
		}
	}
	if len(openAttrs) == 0 {
		return Entailed, nil
	}
	return Open, openAttrs
}

// ResultRow is one alternative surviving a selection, tagged with its
// probability and source.
type ResultRow struct {
	Tuple relation.Tuple
	Prob  float64
	// Block is the source block index, or -1 for a certain tuple.
	Block int
}

// Select returns the probabilistic selection sigma_pred(db): every certain
// tuple that satisfies pred (probability 1) and every block alternative
// that does (its block probability). Rows from one block remain mutually
// exclusive; the per-block row probabilities sum to the block's
// satisfaction probability, which may be below 1 — the tuple might not
// qualify in a given world.
func (db *Database) Select(pred Predicate) []ResultRow {
	var rows []ResultRow
	for _, t := range db.Certain {
		if pred(t) {
			rows = append(rows, ResultRow{Tuple: t, Prob: 1, Block: -1})
		}
	}
	for bi, b := range db.Blocks {
		for _, a := range b.Alts {
			if pred(a.Tuple) {
				rows = append(rows, ResultRow{Tuple: a.Tuple, Prob: a.Prob, Block: bi})
			}
		}
	}
	return rows
}

// GroupStat is one group of an expected-count histogram.
type GroupStat struct {
	Value    int
	Expected float64
	Variance float64
}

// GroupCount returns, for each value of attribute attr, the expected number
// of tuples taking that value and the variance of that count (blocks are
// independent Bernoulli contributions).
func (db *Database) GroupCount(attr int) ([]GroupStat, error) {
	if attr < 0 || attr >= db.Schema.NumAttrs() {
		return nil, fmt.Errorf("pdb: attribute %d out of range", attr)
	}
	card := db.Schema.Attrs[attr].Card()
	stats := make([]GroupStat, card)
	for v := range stats {
		stats[v].Value = v
	}
	for _, t := range db.Certain {
		stats[t[attr]].Expected++
	}
	for _, b := range db.Blocks {
		var perValue = make([]float64, card)
		for _, a := range b.Alts {
			perValue[a.Tuple[attr]] += a.Prob
		}
		for v, p := range perValue {
			stats[v].Expected += p
			stats[v].Variance += p * (1 - p)
		}
	}
	return stats, nil
}

// TopKRows returns the k most probable selection results (certain rows
// first, then by descending probability; ties broken by block order for
// determinism).
func (db *Database) TopKRows(pred Predicate, k int) []ResultRow {
	rows := db.Select(pred)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Prob > rows[j].Prob })
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows
}
