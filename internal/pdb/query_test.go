package pdb

import (
	"math"
	"testing"

	"repro/internal/relation"
)

func TestConjQueryValidate(t *testing.T) {
	s := twoAttrSchema(t)
	if err := (ConjQuery{}).Validate(s); err == nil {
		t.Error("empty query should fail")
	}
	if err := (ConjQuery{{Attr: 9, Value: 0}}).Validate(s); err == nil {
		t.Error("bad attr should fail")
	}
	if err := (ConjQuery{{Attr: 0, Value: 9}}).Validate(s); err == nil {
		t.Error("bad value should fail")
	}
	if err := (ConjQuery{{0, 0}, {0, 1}}).Validate(s); err == nil {
		t.Error("duplicate attr should fail")
	}
	if err := (ConjQuery{{0, 1}, {1, 0}}).Validate(s); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestConjQueryPredicate(t *testing.T) {
	q := ConjQuery{{Attr: 0, Value: 1}, {Attr: 1, Value: 0}}
	pred := q.Predicate()
	if !pred(relation.Tuple{1, 0}) {
		t.Error("matching tuple rejected")
	}
	if pred(relation.Tuple{1, 1}) || pred(relation.Tuple{0, 0}) {
		t.Error("non-matching tuple accepted")
	}
}

func TestEvalKnown(t *testing.T) {
	m := relation.Missing
	q := ConjQuery{{Attr: 0, Value: 1}, {Attr: 2, Value: 0}}
	// Known conflict -> Refuted.
	if out, _ := q.EvalKnown(relation.Tuple{0, m, m}); out != Refuted {
		t.Errorf("conflicting tuple = %v, want Refuted", out)
	}
	// All conditions known-satisfied -> Entailed.
	if out, _ := q.EvalKnown(relation.Tuple{1, m, 0}); out != Entailed {
		t.Errorf("satisfied tuple = %v, want Entailed", out)
	}
	// Open on one attr.
	out, open := q.EvalKnown(relation.Tuple{1, m, m})
	if out != Open || len(open) != 1 || open[0] != 2 {
		t.Errorf("open eval = %v, %v", out, open)
	}
	// Open on both.
	out, open = q.EvalKnown(relation.Tuple{m, m, m})
	if out != Open || len(open) != 2 {
		t.Errorf("fully open eval = %v, %v", out, open)
	}
	// Refuted wins over open.
	if out, _ := q.EvalKnown(relation.Tuple{m, m, 1}); out != Refuted {
		t.Errorf("partially conflicting tuple = %v, want Refuted", out)
	}
}

func TestSelect(t *testing.T) {
	db := buildTestDB(t)
	rows := db.Select(Eq(0, 0)) // x = x0
	// Certain {0,0} (prob 1) + block1 alternative x=0 (0.7).
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Block != -1 || rows[0].Prob != 1 {
		t.Errorf("certain row = %+v", rows[0])
	}
	if rows[1].Block != 0 || math.Abs(rows[1].Prob-0.7) > 1e-12 {
		t.Errorf("block row = %+v", rows[1])
	}
}

func TestGroupCount(t *testing.T) {
	db := buildTestDB(t)
	stats, err := db.GroupCount(0) // attribute x
	if err != nil {
		t.Fatal(err)
	}
	// x=0: certain 1 + block1 0.7 = 1.7; x=1: block1 0.3 + block2 1 = 1.3.
	if math.Abs(stats[0].Expected-1.7) > 1e-12 {
		t.Errorf("E[x=0] = %v, want 1.7", stats[0].Expected)
	}
	if math.Abs(stats[1].Expected-1.3) > 1e-12 {
		t.Errorf("E[x=1] = %v, want 1.3", stats[1].Expected)
	}
	// Variances: block1 contributes 0.21 to both groups; block2 (certain
	// within block on x) contributes 0.
	if math.Abs(stats[0].Variance-0.21) > 1e-12 || math.Abs(stats[1].Variance-0.21) > 1e-12 {
		t.Errorf("variances = %v, %v; want 0.21 each", stats[0].Variance, stats[1].Variance)
	}
	// Expected counts over all groups total the tuple count.
	var total float64
	for _, g := range stats {
		total += g.Expected
	}
	if math.Abs(total-3) > 1e-12 {
		t.Errorf("total expectation = %v, want 3", total)
	}
	if _, err := db.GroupCount(9); err == nil {
		t.Error("bad attribute should fail")
	}
}

func TestTopKRows(t *testing.T) {
	db := buildTestDB(t)
	all := db.TopKRows(func(relation.Tuple) bool { return true }, 0)
	// 1 certain + 2 + 2 alternatives.
	if len(all) != 5 {
		t.Fatalf("rows = %d, want 5", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Prob > all[i-1].Prob {
			t.Errorf("rows not sorted at %d", i)
		}
	}
	top2 := db.TopKRows(func(relation.Tuple) bool { return true }, 2)
	if len(top2) != 2 || top2[0].Prob != 1 {
		t.Errorf("top2 = %+v", top2)
	}
}
