package pdb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/relation"
)

func twoAttrSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema([]relation.Attribute{
		{Name: "x", Domain: []string{"x0", "x1"}},
		{Name: "y", Domain: []string{"y0", "y1"}},
	})
}

// paperBlock builds the Delta_t12 block of Fig. 1: base tuple
// ⟨30, MS, ?, ?⟩ with completions over inc × nw at probabilities
// 0.30, 0.45, 0.10, 0.15.
func paperBlock(t *testing.T) (*Block, *relation.Schema) {
	t.Helper()
	s := relation.MatchmakingSchema()
	m := relation.Missing
	base := relation.Tuple{1, 2, m, m} // 30, MS, ?, ?
	j, err := dist.NewJoint([]int{2, 3}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Index order: (inc, nw) with nw fastest: (50K,100K) (50K,500K)
	// (100K,100K) (100K,500K).
	j.P = dist.Dist{0.30, 0.45, 0.10, 0.15}
	b, err := NewBlock(base, j, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b, s
}

func TestNewBlockPaperExample(t *testing.T) {
	b, _ := paperBlock(t)
	if len(b.Alts) != 4 {
		t.Fatalf("alts = %d, want 4", len(b.Alts))
	}
	if math.Abs(b.ProbSum()-1) > 1e-12 {
		t.Errorf("prob sum = %v", b.ProbSum())
	}
	// Sorted by descending probability: 0.45 first (t12.2 in the paper).
	top := b.MostProbable()
	if math.Abs(top.Prob-0.45) > 1e-12 {
		t.Errorf("most probable = %v, want 0.45", top.Prob)
	}
	if top.Tuple[2] != 0 || top.Tuple[3] != 1 {
		t.Errorf("most probable completion = %v, want inc=50K nw=500K", top.Tuple)
	}
	// All completions preserve the base's known values.
	for _, a := range b.Alts {
		if a.Tuple[0] != 1 || a.Tuple[1] != 2 {
			t.Errorf("completion %v altered known values", a.Tuple)
		}
		if !a.Tuple.IsComplete() {
			t.Errorf("completion %v incomplete", a.Tuple)
		}
	}
}

func TestNewBlockValidation(t *testing.T) {
	s := twoAttrSchema(t)
	_ = s
	complete := relation.Tuple{0, 1}
	j, _ := dist.NewJoint([]int{0}, []int{2})
	j.P = dist.Dist{0.5, 0.5}
	if _, err := NewBlock(complete, j, 0); err == nil {
		t.Error("complete base should fail")
	}
	m := relation.Missing
	base := relation.Tuple{m, 1}
	wrong, _ := dist.NewJoint([]int{1}, []int{2})
	wrong.P = dist.Dist{0.5, 0.5}
	if _, err := NewBlock(base, wrong, 0); err == nil {
		t.Error("joint over wrong attrs should fail")
	}
	zero, _ := dist.NewJoint([]int{0}, []int{2})
	if _, err := NewBlock(base, zero, 0); err == nil {
		t.Error("zero-mass joint should fail")
	}
}

func TestNewBlockTopK(t *testing.T) {
	b, _ := paperBlock(t)
	_ = b
	s := relation.MatchmakingSchema()
	_ = s
	m := relation.Missing
	base := relation.Tuple{1, 2, m, m}
	j, _ := dist.NewJoint([]int{2, 3}, []int{2, 2})
	j.P = dist.Dist{0.30, 0.45, 0.10, 0.15}
	capped, err := NewBlock(base, j, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Alts) != 2 {
		t.Fatalf("alts = %d, want 2", len(capped.Alts))
	}
	if math.Abs(capped.ProbSum()-1) > 1e-12 {
		t.Errorf("renormalized sum = %v", capped.ProbSum())
	}
	// 0.45/0.75 and 0.30/0.75.
	if math.Abs(capped.Alts[0].Prob-0.6) > 1e-12 || math.Abs(capped.Alts[1].Prob-0.4) > 1e-12 {
		t.Errorf("renormalized probs = %v, %v", capped.Alts[0].Prob, capped.Alts[1].Prob)
	}
}

func TestBlockProb(t *testing.T) {
	b, s := paperBlock(t)
	inc := s.AttrIndex("inc")
	nw := s.AttrIndex("nw")
	// P(inc = 50K) = 0.30 + 0.45.
	if got := b.Prob(Eq(inc, 0)); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P(inc=50K) = %v, want 0.75", got)
	}
	// P(inc=100K AND nw=500K) = 0.15.
	if got := b.Prob(And(Eq(inc, 1), Eq(nw, 1))); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("P(inc=100K,nw=500K) = %v, want 0.15", got)
	}
}

func buildTestDB(t *testing.T) *Database {
	t.Helper()
	s := twoAttrSchema(t)
	db := NewDatabase(s)
	if err := db.AddCertain(relation.Tuple{0, 0}); err != nil {
		t.Fatal(err)
	}
	m := relation.Missing
	mk := func(base relation.Tuple, probs []float64) *Block {
		j, err := dist.NewJoint(base.MissingAttrs(), []int{2})
		if err != nil {
			t.Fatal(err)
		}
		j.P = probs
		b, err := NewBlock(base, j, 0)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if err := db.AddBlock(mk(relation.Tuple{m, 1}, []float64{0.7, 0.3})); err != nil {
		t.Fatal(err)
	}
	if err := db.AddBlock(mk(relation.Tuple{1, m}, []float64{0.4, 0.6})); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAddValidation(t *testing.T) {
	db := NewDatabase(twoAttrSchema(t))
	m := relation.Missing
	if err := db.AddCertain(relation.Tuple{0, m}); err == nil {
		t.Error("incomplete certain tuple should fail")
	}
	if err := db.AddBlock(&Block{}); err == nil {
		t.Error("empty block should fail")
	}
	bad := &Block{Alts: []Alternative{{Tuple: relation.Tuple{0, 0}, Prob: 0.5}}}
	if err := db.AddBlock(bad); err == nil {
		t.Error("non-normalized block should fail")
	}
	incomplete := &Block{Alts: []Alternative{{Tuple: relation.Tuple{0, m}, Prob: 1}}}
	if err := db.AddBlock(incomplete); err == nil {
		t.Error("incomplete alternative should fail")
	}
}

func TestNumWorlds(t *testing.T) {
	db := buildTestDB(t)
	if got := db.NumWorlds(); got != 4 {
		t.Errorf("NumWorlds = %d, want 4", got)
	}
	empty := NewDatabase(twoAttrSchema(t))
	if got := empty.NumWorlds(); got != 1 {
		t.Errorf("empty NumWorlds = %d, want 1", got)
	}
}

func TestExpectedCountHandComputed(t *testing.T) {
	db := buildTestDB(t)
	// pred: x = x0. Certain {0,0} matches (1). Block1 base {?,1}:
	// P(x=0)=0.7. Block2 base {1,?}: never matches.
	got := db.ExpectedCount(Eq(0, 0))
	if math.Abs(got-1.7) > 1e-12 {
		t.Errorf("E[count] = %v, want 1.7", got)
	}
	// Variance: 0.7*0.3 + 0 = 0.21.
	if v := db.CountVariance(Eq(0, 0)); math.Abs(v-0.21) > 1e-12 {
		t.Errorf("Var[count] = %v, want 0.21", v)
	}
}

func TestAnyProb(t *testing.T) {
	db := buildTestDB(t)
	// Certain tuple {0,0} matches y=y0 — probability 1.
	if got := db.AnyProb(Eq(1, 0)); got != 1 {
		t.Errorf("AnyProb certain = %v, want 1", got)
	}
	// pred x=x1: block1 P=0.3, block2 P=1. 1-(0.7)(0) = 1.
	if got := db.AnyProb(Eq(0, 1)); math.Abs(got-1) > 1e-12 {
		t.Errorf("AnyProb = %v, want 1", got)
	}
	// pred x=x1 AND y=y1: block1 {?,1}: P(x=1)=0.3 (y=1 fixed) -> 0.3;
	// block2 {1,?}: P(y=1)=0.6. 1 - 0.7*0.4 = 0.72.
	pred := And(Eq(0, 1), Eq(1, 1))
	if got := db.AnyProb(pred); math.Abs(got-0.72) > 1e-12 {
		t.Errorf("AnyProb = %v, want 0.72", got)
	}
}

func TestEnumerateWorlds(t *testing.T) {
	db := buildTestDB(t)
	worlds, err := db.EnumerateWorlds(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 4 {
		t.Fatalf("worlds = %d, want 4", len(worlds))
	}
	var total float64
	for _, w := range worlds {
		total += w.Prob
		tuples := db.Tuples(w)
		if len(tuples) != 3 { // 1 certain + 2 blocks
			t.Errorf("world has %d tuples, want 3", len(tuples))
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("world probabilities sum to %v", total)
	}
	if _, err := db.EnumerateWorlds(3); err == nil {
		t.Error("limit exceeded should fail")
	}
}

func TestMostProbableWorld(t *testing.T) {
	db := buildTestDB(t)
	w := db.MostProbableWorld()
	// Block1 best = 0.7 (x=0), block2 best = 0.6 (y=1).
	if math.Abs(w.Prob-0.42) > 1e-12 {
		t.Errorf("most probable world prob = %v, want 0.42", w.Prob)
	}
	worlds, err := db.EnumerateWorlds(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range worlds {
		if other.Prob > w.Prob+1e-12 {
			t.Errorf("world %v beats 'most probable' (%v > %v)", other.Choice, other.Prob, w.Prob)
		}
	}
}

func TestSampleWorldEmpirical(t *testing.T) {
	db := buildTestDB(t)
	rng := rand.New(rand.NewSource(17))
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		w := db.SampleWorld(rng)
		counts[w.Choice[0]*2+w.Choice[1]]++
	}
	// Alts are sorted by descending probability: block1 = {0.7 (x=0),
	// 0.3 (x=1)}, block2 = {0.6 (y=1), 0.4 (y=0)}.
	want := []float64{0.42, 0.28, 0.18, 0.12}
	for k, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[k]) > 0.01 {
			t.Errorf("world %d freq %v, want %v", k, got, want[k])
		}
	}
}

func TestMonteCarloCountAgreesWithExact(t *testing.T) {
	db := buildTestDB(t)
	rng := rand.New(rand.NewSource(18))
	exact := db.ExpectedCount(Eq(0, 0))
	mc := db.MonteCarloCount(Eq(0, 0), rng, 50000)
	if math.Abs(mc-exact) > 0.02 {
		t.Errorf("MC = %v, exact = %v", mc, exact)
	}
}

// TestQuickExpectedCountLinearity: expected counts of a predicate and its
// complement sum to the total tuple count.
func TestQuickExpectedCountLinearity(t *testing.T) {
	f := func(p1, p2 uint8) bool {
		a := 0.1 + 0.8*float64(p1)/255
		b := 0.1 + 0.8*float64(p2)/255
		s := relation.MustSchema([]relation.Attribute{
			{Name: "x", Domain: []string{"0", "1"}},
		})
		db := NewDatabase(s)
		m := relation.Missing
		for _, p := range []float64{a, b} {
			j, err := dist.NewJoint([]int{0}, []int{2})
			if err != nil {
				return false
			}
			j.P = dist.Dist{p, 1 - p}
			blk, err := NewBlock(relation.Tuple{m}, j, 0)
			if err != nil {
				return false
			}
			if err := db.AddBlock(blk); err != nil {
				return false
			}
		}
		e0 := db.ExpectedCount(Eq(0, 0))
		e1 := db.ExpectedCount(Eq(0, 1))
		return math.Abs(e0+e1-2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickWorldProbsSumToOne on random two-block databases.
func TestQuickWorldProbsSumToOne(t *testing.T) {
	f := func(p1, p2 uint8) bool {
		a := 0.05 + 0.9*float64(p1)/255
		b := 0.05 + 0.9*float64(p2)/255
		s := relation.MustSchema([]relation.Attribute{
			{Name: "x", Domain: []string{"0", "1"}},
			{Name: "y", Domain: []string{"0", "1"}},
		})
		db := NewDatabase(s)
		m := relation.Missing
		mk := func(base relation.Tuple, p float64) bool {
			j, err := dist.NewJoint(base.MissingAttrs(), []int{2})
			if err != nil {
				return false
			}
			j.P = dist.Dist{p, 1 - p}
			blk, err := NewBlock(base, j, 0)
			if err != nil {
				return false
			}
			return db.AddBlock(blk) == nil
		}
		if !mk(relation.Tuple{m, 0}, a) || !mk(relation.Tuple{1, m}, b) {
			return false
		}
		worlds, err := db.EnumerateWorlds(16)
		if err != nil {
			return false
		}
		var total float64
		for _, w := range worlds {
			total += w.Prob
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
