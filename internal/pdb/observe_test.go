package pdb

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/relation"
)

// TestObservePaperBlock conditions the paper's Delta_t12 block on
// inc = 50K: the surviving completions are t12.1 (0.30) and t12.2 (0.45),
// renormalized to 0.4 and 0.6.
func TestObservePaperBlock(t *testing.T) {
	b, s := paperBlock(t)
	inc := s.AttrIndex("inc")
	nb, err := b.Observe(inc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Alts) != 2 {
		t.Fatalf("alts = %d, want 2", len(nb.Alts))
	}
	if nb.Base[inc] != 0 {
		t.Errorf("base inc = %d, want 0", nb.Base[inc])
	}
	// Sorted descending: 0.6 (nw=500K) then 0.4 (nw=100K).
	if math.Abs(nb.Alts[0].Prob-0.6) > 1e-12 || math.Abs(nb.Alts[1].Prob-0.4) > 1e-12 {
		t.Errorf("posterior = %v, %v; want 0.6, 0.4", nb.Alts[0].Prob, nb.Alts[1].Prob)
	}
	// The original block is untouched.
	if len(b.Alts) != 4 {
		t.Error("Observe mutated the source block")
	}
}

func TestObserveValidation(t *testing.T) {
	b, s := paperBlock(t)
	if _, err := b.Observe(-1, 0); err == nil {
		t.Error("bad attribute should fail")
	}
	age := s.AttrIndex("age")
	// age is known (30 = code 1): observing the same value is a no-op that
	// returns an independent clone, never the (possibly shared) receiver...
	same, err := b.Observe(age, 1)
	if err != nil {
		t.Fatalf("observing known value: %v", err)
	}
	if same == b {
		t.Error("no-op observation returned the receiver instead of a clone")
	}
	if len(same.Alts) != len(b.Alts) {
		t.Fatalf("no-op clone has %d alts, want %d", len(same.Alts), len(b.Alts))
	}
	for i := range b.Alts {
		if !same.Alts[i].Tuple.Equal(b.Alts[i].Tuple) || same.Alts[i].Prob != b.Alts[i].Prob {
			t.Errorf("no-op clone alt %d = %v, want %v", i, same.Alts[i], b.Alts[i])
		}
		if &same.Alts[i].Tuple[0] == &b.Alts[i].Tuple[0] {
			t.Errorf("no-op clone alt %d shares tuple storage with the source", i)
		}
	}
	// ...but a conflicting one fails.
	if _, err := b.Observe(age, 0); err == nil {
		t.Error("conflicting observation should fail")
	}
}

func TestObserveZeroProbabilityValue(t *testing.T) {
	s := relation.MatchmakingSchema()
	_ = s
	m := relation.Missing
	base := relation.Tuple{1, 2, m, m}
	j, err := dist.NewJoint([]int{2, 3}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// inc=100K carries all mass; observing inc=50K is impossible.
	j.P = dist.Dist{0, 0, 0.5, 0.5}
	b, err := NewBlock(base, j, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Observe(2, 0); err == nil {
		t.Error("zero-probability observation should fail")
	}
}

func TestObserveBlockCollapsesToCertain(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "x", Domain: []string{"0", "1"}},
		{Name: "y", Domain: []string{"0", "1"}},
	})
	db := NewDatabase(s)
	m := relation.Missing
	j, err := dist.NewJoint([]int{1}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	j.P = dist.Dist{0.3, 0.7}
	b, err := NewBlock(relation.Tuple{0, m}, j, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if err := db.ObserveBlock(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(db.Blocks) != 0 {
		t.Fatalf("block did not collapse: %d blocks", len(db.Blocks))
	}
	if len(db.Certain) != 1 || !db.Certain[0].Equal(relation.Tuple{0, 1}) {
		t.Errorf("certain = %v", db.Certain)
	}
	if err := db.ObserveBlock(5, 0, 0); err == nil {
		t.Error("bad block index should fail")
	}
}

// TestObservePartialKeepsBlock: observing one of two missing attributes
// leaves a smaller, renormalized block in place.
func TestObservePartialKeepsBlock(t *testing.T) {
	b, s := paperBlock(t)
	db := NewDatabase(s)
	if err := db.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if err := db.ObserveBlock(0, s.AttrIndex("inc"), 1); err != nil {
		t.Fatal(err)
	}
	if len(db.Blocks) != 1 || len(db.Certain) != 0 {
		t.Fatalf("blocks=%d certain=%d", len(db.Blocks), len(db.Certain))
	}
	nb := db.Blocks[0]
	if math.Abs(nb.ProbSum()-1) > 1e-12 {
		t.Errorf("posterior not normalized: %v", nb.ProbSum())
	}
	// Original masses 0.10 (nw=100K) and 0.15 (nw=500K) -> 0.4 / 0.6.
	if math.Abs(nb.Prob(Eq(s.AttrIndex("nw"), 1))-0.6) > 1e-12 {
		t.Errorf("P(nw=500K | inc=100K) = %v, want 0.6", nb.Prob(Eq(s.AttrIndex("nw"), 1)))
	}
}

// TestObserveMatchesConditionalMath: conditioning a block equals dividing
// the selected mass by the marginal, for random distributions.
func TestObserveMatchesConditionalMath(t *testing.T) {
	s := relation.MatchmakingSchema()
	m := relation.Missing
	base := relation.Tuple{0, 0, m, m}
	j, err := dist.NewJoint([]int{2, 3}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	j.P = dist.Dist{0.1, 0.2, 0.3, 0.4}
	b, err := NewBlock(base, j, 0)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Observe(3, 0) // nw = 100K: masses 0.1 and 0.3
	if err != nil {
		t.Fatal(err)
	}
	incIdx := s.AttrIndex("inc")
	want := 0.3 / 0.4 // P(inc=100K | nw=100K)
	if got := nb.Prob(Eq(incIdx, 1)); math.Abs(got-want) > 1e-12 {
		t.Errorf("P(inc=100K|nw=100K) = %v, want %v", got, want)
	}
}

// snapshotBlock deep-copies a block's full observable state, so tests can
// assert a conditioning operation left the source bit-identical.
func snapshotBlock(b *Block) *Block {
	return b.Clone()
}

func requireBlocksIdentical(t *testing.T, label string, got, want *Block) {
	t.Helper()
	if !got.Base.Equal(want.Base) {
		t.Fatalf("%s: base mutated: %v, want %v", label, got.Base, want.Base)
	}
	if len(got.Alts) != len(want.Alts) {
		t.Fatalf("%s: alts mutated: %d, want %d", label, len(got.Alts), len(want.Alts))
	}
	for i := range want.Alts {
		if !got.Alts[i].Tuple.Equal(want.Alts[i].Tuple) || got.Alts[i].Prob != want.Alts[i].Prob {
			t.Fatalf("%s: alt %d mutated: %v, want %v", label, i, got.Alts[i], want.Alts[i])
		}
	}
}

// TestObserveNeverMutatesSource is the property test behind mutable
// datasets: for random blocks and random observation sequences, every
// conditioning step leaves the source block bit-identical, and no
// posterior shares tuple storage with it — a cached block conditioned by
// one dataset can never corrupt another.
func TestObserveNeverMutatesSource(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := relation.MatchmakingSchema()
	cards := s.Cards()
	for trial := 0; trial < 200; trial++ {
		// Random base with 1-3 missing attributes.
		m := relation.Missing
		base := relation.NewTuple(len(cards))
		for a := range base {
			base[a] = rng.Intn(cards[a])
		}
		missing := rng.Perm(len(cards))[:1+rng.Intn(3)]
		for _, a := range missing {
			base[a] = m
		}
		sort.Ints(missing)
		cardsM := make([]int, len(missing))
		for i, a := range missing {
			cardsM[i] = cards[a]
		}
		j, err := dist.NewJoint(missing, cardsM)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range j.P {
			j.P[i] = rng.Float64()
			sum += j.P[i]
		}
		for i := range j.P {
			j.P[i] /= sum
		}
		b, err := NewBlock(base, j, 0)
		if err != nil {
			t.Fatal(err)
		}
		cur := b
		for step := 0; len(cur.Base.MissingAttrs()) > 0 && step < 4; step++ {
			snap := snapshotBlock(cur)
			open := cur.Base.MissingAttrs()
			attr := open[rng.Intn(len(open))]
			// Pick a value with positive remaining mass from a random
			// surviving alternative, so the observation always succeeds.
			val := cur.Alts[rng.Intn(len(cur.Alts))].Tuple[attr]
			nb, err := cur.Observe(attr, val)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			requireBlocksIdentical(t, "source after Observe", cur, snap)
			for i := range nb.Alts {
				for k := range cur.Alts {
					if len(nb.Alts[i].Tuple) > 0 && len(cur.Alts[k].Tuple) > 0 &&
						&nb.Alts[i].Tuple[0] == &cur.Alts[k].Tuple[0] {
						t.Fatalf("trial %d: posterior alt %d aliases source alt %d", trial, i, k)
					}
				}
			}
			if math.Abs(nb.ProbSum()-1) > 1e-9 {
				t.Fatalf("trial %d: posterior not normalized: %v", trial, nb.ProbSum())
			}
			cur = nb
		}
	}
}

// TestObserveDedupsEqualAlternatives: conditioning a hand-built block
// whose alternatives collide once the observed attribute stops
// distinguishing them merges the duplicates, summing their mass.
func TestObserveDedupsEqualAlternatives(t *testing.T) {
	m := relation.Missing
	base := relation.Tuple{0, m, m}
	b := &Block{Base: base.Clone(), Alts: []Alternative{
		{Tuple: relation.Tuple{0, 0, 0}, Prob: 0.5},
		{Tuple: relation.Tuple{0, 1, 0}, Prob: 0.3},
		{Tuple: relation.Tuple{0, 0, 1}, Prob: 0.1},
		{Tuple: relation.Tuple{0, 0, 0}, Prob: 0.1}, // duplicate of the first
	}}
	nb, err := b.Observe(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Alts) != 2 {
		t.Fatalf("alts = %d, want 2 (duplicates merged)", len(nb.Alts))
	}
	// Survivors: {0,0,0} with 0.5+0.1=0.6 and {0,0,1} with 0.1, over 0.7.
	if !nb.Alts[0].Tuple.Equal(relation.Tuple{0, 0, 0}) {
		t.Fatalf("first alt = %v", nb.Alts[0].Tuple)
	}
	if math.Abs(nb.Alts[0].Prob-0.6/0.7) > 1e-12 || math.Abs(nb.Alts[1].Prob-0.1/0.7) > 1e-12 {
		t.Errorf("posterior = %v, %v; want %v, %v", nb.Alts[0].Prob, nb.Alts[1].Prob, 0.6/0.7, 0.1/0.7)
	}
	// Final observation collapses to exactly one certain tuple, never a
	// duplicate-laden one.
	final, err := nb.Observe(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Alts) != 1 || final.Alts[0].Prob != 1 {
		t.Fatalf("collapsed block = %+v, want one certain alternative", final.Alts)
	}
}

// TestObserveBlockUnpinsRemovedSlot: the collapse path zeroes the stale
// tail slot, so a removed block is not kept alive by the shifted slice's
// backing array.
func TestObserveBlockUnpinsRemovedSlot(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "x", Domain: []string{"0", "1"}},
		{Name: "y", Domain: []string{"0", "1"}},
	})
	db := NewDatabase(s)
	m := relation.Missing
	for i := 0; i < 3; i++ {
		j, err := dist.NewJoint([]int{1}, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		j.P = dist.Dist{0.4, 0.6}
		b, err := NewBlock(relation.Tuple{i % 2, m}, j, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	backing := db.Blocks // shares the backing array the delete shifts
	if err := db.ObserveBlock(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if len(db.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(db.Blocks))
	}
	if backing[2] != nil {
		t.Error("stale tail slot still pins the removed block")
	}
}
