package pdb

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/relation"
)

// TestObservePaperBlock conditions the paper's Delta_t12 block on
// inc = 50K: the surviving completions are t12.1 (0.30) and t12.2 (0.45),
// renormalized to 0.4 and 0.6.
func TestObservePaperBlock(t *testing.T) {
	b, s := paperBlock(t)
	inc := s.AttrIndex("inc")
	nb, err := b.Observe(inc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Alts) != 2 {
		t.Fatalf("alts = %d, want 2", len(nb.Alts))
	}
	if nb.Base[inc] != 0 {
		t.Errorf("base inc = %d, want 0", nb.Base[inc])
	}
	// Sorted descending: 0.6 (nw=500K) then 0.4 (nw=100K).
	if math.Abs(nb.Alts[0].Prob-0.6) > 1e-12 || math.Abs(nb.Alts[1].Prob-0.4) > 1e-12 {
		t.Errorf("posterior = %v, %v; want 0.6, 0.4", nb.Alts[0].Prob, nb.Alts[1].Prob)
	}
	// The original block is untouched.
	if len(b.Alts) != 4 {
		t.Error("Observe mutated the source block")
	}
}

func TestObserveValidation(t *testing.T) {
	b, s := paperBlock(t)
	if _, err := b.Observe(-1, 0); err == nil {
		t.Error("bad attribute should fail")
	}
	age := s.AttrIndex("age")
	// age is known (30 = code 1): observing the same value is a no-op...
	same, err := b.Observe(age, 1)
	if err != nil || same != b {
		t.Errorf("observing known value: %v, %v", same, err)
	}
	// ...but a conflicting one fails.
	if _, err := b.Observe(age, 0); err == nil {
		t.Error("conflicting observation should fail")
	}
}

func TestObserveZeroProbabilityValue(t *testing.T) {
	s := relation.MatchmakingSchema()
	_ = s
	m := relation.Missing
	base := relation.Tuple{1, 2, m, m}
	j, err := dist.NewJoint([]int{2, 3}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// inc=100K carries all mass; observing inc=50K is impossible.
	j.P = dist.Dist{0, 0, 0.5, 0.5}
	b, err := NewBlock(base, j, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Observe(2, 0); err == nil {
		t.Error("zero-probability observation should fail")
	}
}

func TestObserveBlockCollapsesToCertain(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "x", Domain: []string{"0", "1"}},
		{Name: "y", Domain: []string{"0", "1"}},
	})
	db := NewDatabase(s)
	m := relation.Missing
	j, err := dist.NewJoint([]int{1}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	j.P = dist.Dist{0.3, 0.7}
	b, err := NewBlock(relation.Tuple{0, m}, j, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if err := db.ObserveBlock(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(db.Blocks) != 0 {
		t.Fatalf("block did not collapse: %d blocks", len(db.Blocks))
	}
	if len(db.Certain) != 1 || !db.Certain[0].Equal(relation.Tuple{0, 1}) {
		t.Errorf("certain = %v", db.Certain)
	}
	if err := db.ObserveBlock(5, 0, 0); err == nil {
		t.Error("bad block index should fail")
	}
}

// TestObservePartialKeepsBlock: observing one of two missing attributes
// leaves a smaller, renormalized block in place.
func TestObservePartialKeepsBlock(t *testing.T) {
	b, s := paperBlock(t)
	db := NewDatabase(s)
	if err := db.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if err := db.ObserveBlock(0, s.AttrIndex("inc"), 1); err != nil {
		t.Fatal(err)
	}
	if len(db.Blocks) != 1 || len(db.Certain) != 0 {
		t.Fatalf("blocks=%d certain=%d", len(db.Blocks), len(db.Certain))
	}
	nb := db.Blocks[0]
	if math.Abs(nb.ProbSum()-1) > 1e-12 {
		t.Errorf("posterior not normalized: %v", nb.ProbSum())
	}
	// Original masses 0.10 (nw=100K) and 0.15 (nw=500K) -> 0.4 / 0.6.
	if math.Abs(nb.Prob(Eq(s.AttrIndex("nw"), 1))-0.6) > 1e-12 {
		t.Errorf("P(nw=500K | inc=100K) = %v, want 0.6", nb.Prob(Eq(s.AttrIndex("nw"), 1)))
	}
}

// TestObserveMatchesConditionalMath: conditioning a block equals dividing
// the selected mass by the marginal, for random distributions.
func TestObserveMatchesConditionalMath(t *testing.T) {
	s := relation.MatchmakingSchema()
	m := relation.Missing
	base := relation.Tuple{0, 0, m, m}
	j, err := dist.NewJoint([]int{2, 3}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	j.P = dist.Dist{0.1, 0.2, 0.3, 0.4}
	b, err := NewBlock(base, j, 0)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Observe(3, 0) // nw = 100K: masses 0.1 and 0.3
	if err != nil {
		t.Fatal(err)
	}
	incIdx := s.AttrIndex("inc")
	want := 0.3 / 0.4 // P(inc=100K | nw=100K)
	if got := nb.Prob(Eq(incIdx, 1)); math.Abs(got-want) > 1e-12 {
		t.Errorf("P(inc=100K|nw=100K) = %v, want %v", got, want)
	}
}
