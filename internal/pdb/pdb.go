// Package pdb implements the disjoint-independent probabilistic database
// model that the paper's pipeline produces (Section I-A): each incomplete
// tuple gives rise to a block of mutually exclusive completed tuples, one
// of which is chosen per possible world, independently across blocks.
// The package provides block construction from inferred joint
// distributions, possible-world semantics (enumeration, sampling, most
// probable world), and query evaluation (per-block marginals, expected
// counts, projection probabilities) under block independence.
package pdb

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/dist"
	"repro/internal/relation"
)

// Alternative is one completed version of an incomplete tuple, with its
// probability within the block.
type Alternative struct {
	Tuple relation.Tuple
	Prob  float64
}

// Block is the distribution Delta_t over the completions of one incomplete
// tuple: a set of mutually exclusive alternatives whose probabilities sum
// to 1.
type Block struct {
	// Base is the original incomplete tuple.
	Base relation.Tuple
	// Alts are the completions, sorted by descending probability.
	Alts []Alternative
}

// NewBlock expands an inferred joint distribution over the missing
// attributes of base into a block of completed tuples. maxAlts > 0 keeps
// only the most probable alternatives (renormalized); <= 0 keeps all.
// The returned block is meant to be shared and must be treated as
// immutable: the alternatives' tuples live on one backing array, and the
// derivation engine hands one block to every duplicate of a damage
// pattern.
func NewBlock(base relation.Tuple, j *dist.Joint, maxAlts int) (*Block, error) {
	missing := base.MissingAttrs()
	if len(missing) == 0 {
		return nil, fmt.Errorf("pdb: tuple %v is already complete", base)
	}
	if len(j.Attrs) != len(missing) {
		return nil, fmt.Errorf("pdb: joint over %v does not cover missing %v", j.Attrs, missing)
	}
	for i, a := range j.Attrs {
		if a != missing[i] {
			return nil, fmt.Errorf("pdb: joint over %v does not cover missing %v", j.Attrs, missing)
		}
	}
	n := 0
	for _, p := range j.P {
		if p > 0 {
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("pdb: joint for %v has no mass", base)
	}
	b := &Block{Base: base.Clone(), Alts: make([]Alternative, 0, n)}
	// One backing array holds every completion; alternatives are never
	// mutated after construction, so they can share it.
	backing := make(relation.Tuple, n*len(base))
	var valsArr [16]int
	valsN := valsArr[:min(len(missing), len(valsArr))]
	if len(missing) > len(valsArr) {
		valsN = make([]int, len(missing))
	}
	for idx, p := range j.P {
		if p <= 0 {
			continue
		}
		j.ValuesInto(idx, valsN)
		tu := backing[:len(base):len(base)]
		backing = backing[len(base):]
		copy(tu, base)
		for k, a := range missing {
			tu[a] = valsN[k]
		}
		b.Alts = append(b.Alts, Alternative{Tuple: tu, Prob: p})
	}
	slices.SortStableFunc(b.Alts, func(x, y Alternative) int {
		switch {
		case x.Prob > y.Prob:
			return -1
		case x.Prob < y.Prob:
			return 1
		}
		return 0
	})
	if maxAlts > 0 && len(b.Alts) > maxAlts {
		// Copy the kept alternatives onto right-sized storage: a bare
		// re-slice would pin the dropped tail and the full backing array
		// for as long as the block lives (blocks are cached engine-wide).
		kept := make([]Alternative, maxAlts)
		keptBacking := make(relation.Tuple, maxAlts*len(base))
		for i, a := range b.Alts[:maxAlts] {
			tu := keptBacking[:len(base):len(base)]
			keptBacking = keptBacking[len(base):]
			copy(tu, a.Tuple)
			kept[i] = Alternative{Tuple: tu, Prob: a.Prob}
		}
		b.Alts = kept
		b.renormalize()
	}
	return b, nil
}

func (b *Block) renormalize() {
	var s float64
	for _, a := range b.Alts {
		s += a.Prob
	}
	if s <= 0 {
		u := 1.0 / float64(len(b.Alts))
		for i := range b.Alts {
			b.Alts[i].Prob = u
		}
		return
	}
	for i := range b.Alts {
		b.Alts[i].Prob /= s
	}
}

// ProbSum returns the total probability mass of the block's alternatives.
func (b *Block) ProbSum() float64 {
	var s float64
	for _, a := range b.Alts {
		s += a.Prob
	}
	return s
}

// MostProbable returns the alternative with the highest probability.
func (b *Block) MostProbable() Alternative { return b.Alts[0] }

// Predicate selects tuples; used by queries.
type Predicate func(relation.Tuple) bool

// Eq returns a predicate matching tuples whose attribute attr equals val.
func Eq(attr, val int) Predicate {
	return func(t relation.Tuple) bool { return t[attr] == val }
}

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(t relation.Tuple) bool {
		for _, p := range ps {
			if !p(t) {
				return false
			}
		}
		return true
	}
}

// Prob returns the probability that the block's tuple satisfies pred.
func (b *Block) Prob(pred Predicate) float64 {
	var s float64
	for _, a := range b.Alts {
		if pred(a.Tuple) {
			s += a.Prob
		}
	}
	return s
}

// Database is a disjoint-independent probabilistic database: certain
// (complete) tuples plus independent blocks of mutually exclusive
// alternatives.
type Database struct {
	Schema  *relation.Schema
	Certain []relation.Tuple
	Blocks  []*Block
}

// NewDatabase returns an empty database over the schema.
func NewDatabase(s *relation.Schema) *Database {
	return &Database{Schema: s}
}

// AddCertain appends a complete tuple.
func (db *Database) AddCertain(t relation.Tuple) error {
	if !t.IsComplete() {
		return fmt.Errorf("pdb: certain tuple %v is incomplete", t)
	}
	db.Certain = append(db.Certain, t)
	return nil
}

// AddBlock appends a block after validating its distribution.
func (db *Database) AddBlock(b *Block) error {
	if len(b.Alts) == 0 {
		return fmt.Errorf("pdb: block has no alternatives")
	}
	if math.Abs(b.ProbSum()-1) > 1e-6 {
		return fmt.Errorf("pdb: block probabilities sum to %v", b.ProbSum())
	}
	for _, a := range b.Alts {
		if !a.Tuple.IsComplete() {
			return fmt.Errorf("pdb: alternative %v is incomplete", a.Tuple)
		}
		if a.Prob < 0 {
			return fmt.Errorf("pdb: negative probability %v", a.Prob)
		}
	}
	db.Blocks = append(db.Blocks, b)
	return nil
}

// NumWorlds returns the number of possible worlds (product of block sizes),
// or -1 if it overflows int64.
func (db *Database) NumWorlds() int64 {
	n := int64(1)
	for _, b := range db.Blocks {
		k := int64(len(b.Alts))
		if n > math.MaxInt64/k {
			return -1
		}
		n *= k
	}
	return n
}

// ExpectedCount returns the expected number of tuples satisfying pred:
// certain matches count 1, each block contributes its match probability.
func (db *Database) ExpectedCount(pred Predicate) float64 {
	var e float64
	for _, t := range db.Certain {
		if pred(t) {
			e++
		}
	}
	for _, b := range db.Blocks {
		e += b.Prob(pred)
	}
	return e
}

// CountVariance returns the variance of the count of tuples satisfying
// pred; blocks are independent Bernoulli contributions, certain tuples are
// constant.
func (db *Database) CountVariance(pred Predicate) float64 {
	var v float64
	for _, b := range db.Blocks {
		p := b.Prob(pred)
		v += p * (1 - p)
	}
	return v
}

// AnyProb returns the probability that at least one tuple (certain or
// uncertain) satisfies pred: 1 if a certain tuple matches, otherwise
// 1 - prod_blocks (1 - P(match)) by block independence. This evaluates
// projection/existential queries.
func (db *Database) AnyProb(pred Predicate) float64 {
	for _, t := range db.Certain {
		if pred(t) {
			return 1
		}
	}
	q := 1.0
	for _, b := range db.Blocks {
		q *= 1 - b.Prob(pred)
	}
	return 1 - q
}

// World is one possible world: a choice of alternative per block.
type World struct {
	// Choice[i] indexes Blocks[i].Alts.
	Choice []int
	// Prob is the world's probability (product of chosen alternatives).
	Prob float64
}

// Tuples materializes the world as a complete relation: certain tuples
// followed by each block's chosen alternative.
func (db *Database) Tuples(w World) []relation.Tuple {
	out := make([]relation.Tuple, 0, len(db.Certain)+len(db.Blocks))
	out = append(out, db.Certain...)
	for i, b := range db.Blocks {
		out = append(out, b.Alts[w.Choice[i]].Tuple)
	}
	return out
}

// EnumerateWorlds lists every possible world, or fails if there are more
// than limit.
func (db *Database) EnumerateWorlds(limit int64) ([]World, error) {
	n := db.NumWorlds()
	if n < 0 || n > limit {
		return nil, fmt.Errorf("pdb: %d possible worlds exceed limit %d", n, limit)
	}
	worlds := make([]World, 0, n)
	choice := make([]int, len(db.Blocks))
	var walk func(i int, p float64)
	walk = func(i int, p float64) {
		if i == len(db.Blocks) {
			worlds = append(worlds, World{Choice: append([]int(nil), choice...), Prob: p})
			return
		}
		for k, a := range db.Blocks[i].Alts {
			choice[i] = k
			walk(i+1, p*a.Prob)
		}
	}
	walk(0, 1)
	return worlds, nil
}

// SampleWorld draws a possible world according to the block distributions.
func (db *Database) SampleWorld(rng *rand.Rand) World {
	w := World{Choice: make([]int, len(db.Blocks)), Prob: 1}
	for i, b := range db.Blocks {
		u := rng.Float64()
		acc := 0.0
		pick := len(b.Alts) - 1
		for k, a := range b.Alts {
			acc += a.Prob
			if u < acc {
				pick = k
				break
			}
		}
		w.Choice[i] = pick
		w.Prob *= b.Alts[pick].Prob
	}
	return w
}

// MostProbableWorld returns the world choosing each block's most probable
// alternative; under block independence this maximizes world probability.
func (db *Database) MostProbableWorld() World {
	w := World{Choice: make([]int, len(db.Blocks)), Prob: 1}
	for i, b := range db.Blocks {
		w.Choice[i] = 0 // Alts sorted by descending probability
		w.Prob *= b.Alts[0].Prob
	}
	return w
}

// MonteCarloCount estimates the distribution of the count of tuples
// matching pred by sampling worlds; it returns the empirical mean. It is a
// cross-check for ExpectedCount in the style of MCDB-like systems.
func (db *Database) MonteCarloCount(pred Predicate, rng *rand.Rand, worlds int) float64 {
	if worlds <= 0 {
		worlds = 1000
	}
	var total float64
	for i := 0; i < worlds; i++ {
		w := db.SampleWorld(rng)
		for _, t := range db.Tuples(w) {
			if pred(t) {
				total++
			}
		}
	}
	return total / float64(worlds)
}
