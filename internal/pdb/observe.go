package pdb

import (
	"fmt"

	"repro/internal/relation"
)

// Observation support: in interactive cleaning, a user (or a later data
// delivery) pins down one of a tuple's missing values. Conditioning the
// block on that observation is a Bayesian update within the block — the
// alternatives inconsistent with the observation drop out and the rest
// renormalize — and requires no re-inference.

// Observe returns a new block conditioned on attribute attr having value
// val. The base tuple's missing marker for attr is replaced by the
// observed value. Observing a value the block considers impossible (zero
// remaining mass) is an error: the model and the observation disagree.
func (b *Block) Observe(attr, val int) (*Block, error) {
	if attr < 0 || attr >= len(b.Base) {
		return nil, fmt.Errorf("pdb: attribute %d out of range", attr)
	}
	if b.Base[attr] != relation.Missing {
		if b.Base[attr] == val {
			return b, nil // observation agrees with a known value: no-op
		}
		return nil, fmt.Errorf("pdb: observation %d conflicts with known value %d", val, b.Base[attr])
	}
	nb := &Block{Base: b.Base.Clone()}
	nb.Base[attr] = val
	for _, a := range b.Alts {
		if a.Tuple[attr] != val {
			continue
		}
		nb.Alts = append(nb.Alts, Alternative{Tuple: a.Tuple, Prob: a.Prob})
	}
	if len(nb.Alts) == 0 {
		return nil, fmt.Errorf("pdb: observed value has zero probability in block for %v", b.Base)
	}
	nb.renormalize()
	return nb, nil
}

// ObserveBlock conditions block index bi of the database in place. If the
// observation completes the tuple (no alternatives remain distinct), the
// block collapses into a certain tuple.
func (db *Database) ObserveBlock(bi, attr, val int) error {
	if bi < 0 || bi >= len(db.Blocks) {
		return fmt.Errorf("pdb: block %d out of range", bi)
	}
	nb, err := db.Blocks[bi].Observe(attr, val)
	if err != nil {
		return err
	}
	if nb.Base.IsComplete() {
		// The observation determined the last missing value: the block
		// collapses to a certain tuple.
		db.Certain = append(db.Certain, nb.Alts[0].Tuple)
		db.Blocks = append(db.Blocks[:bi], db.Blocks[bi+1:]...)
		return nil
	}
	db.Blocks[bi] = nb
	return nil
}
