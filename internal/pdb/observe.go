package pdb

import (
	"fmt"

	"repro/internal/relation"
)

// Observation support: in interactive cleaning, a user (or a later data
// delivery) pins down one of a tuple's missing values. Conditioning the
// block on that observation is a Bayesian update within the block — the
// alternatives inconsistent with the observation drop out and the rest
// renormalize — and requires no re-inference.

// Clone returns a deep copy of the block: the base tuple, and every
// alternative's tuple, live on fresh storage. Conditioning paths hand the
// clone to callers that will hold (and possibly re-condition) the block
// long after the source — typically a shared, engine-cached block — must
// stay untouched.
func (b *Block) Clone() *Block {
	nb := &Block{Base: b.Base.Clone(), Alts: make([]Alternative, len(b.Alts))}
	backing := make(relation.Tuple, len(b.Alts)*len(b.Base))
	for i, a := range b.Alts {
		tu := backing[:len(a.Tuple):len(a.Tuple)]
		backing = backing[len(a.Tuple):]
		copy(tu, a.Tuple)
		nb.Alts[i] = Alternative{Tuple: tu, Prob: a.Prob}
	}
	return nb
}

// Observe returns a new block conditioned on attribute attr having value
// val. The base tuple's missing marker for attr is replaced by the
// observed value. Observing a value the block considers impossible (zero
// remaining mass) is an error: the model and the observation disagree.
//
// The returned block never shares storage with the receiver — not the
// base tuple, not the alternatives, not their tuples — and the receiver is
// never mutated, so a shared (engine-cached) block can be conditioned into
// any number of independently owned posteriors. This holds on the no-op
// path too (observing an already-known value returns a clone, not the
// receiver). Alternatives whose tuples become equal under conditioning are
// merged (probabilities summed, first-appearance order kept) before
// renormalizing, so a posterior block never carries duplicate completions.
func (b *Block) Observe(attr, val int) (*Block, error) {
	if attr < 0 || attr >= len(b.Base) {
		return nil, fmt.Errorf("pdb: attribute %d out of range", attr)
	}
	if b.Base[attr] != relation.Missing {
		if b.Base[attr] == val {
			// Observation agrees with a known value: a no-op, but callers
			// own the result, so it must not alias the (shared) receiver.
			return b.Clone(), nil
		}
		return nil, fmt.Errorf("pdb: observation %d conflicts with known value %d", val, b.Base[attr])
	}
	nb := &Block{Base: b.Base.Clone()}
	nb.Base[attr] = val
	for _, a := range b.Alts {
		if a.Tuple[attr] != val {
			continue
		}
		// Deep-copy the surviving completion: the source alternatives share
		// one backing array owned by the (possibly cached) source block.
		nb.Alts = append(nb.Alts, Alternative{Tuple: a.Tuple.Clone(), Prob: a.Prob})
	}
	if len(nb.Alts) == 0 {
		return nil, fmt.Errorf("pdb: observed value has zero probability in block for %v", b.Base)
	}
	nb.dedup()
	nb.renormalize()
	return nb, nil
}

// dedup merges alternatives with equal tuples, summing their probabilities
// into the first appearance. Blocks built by NewBlock never carry
// duplicates, but conditioning a hand-built block (AddBlock accepts any
// valid distribution) can make alternatives collide once the observed
// attribute no longer distinguishes them.
func (b *Block) dedup() {
	out := b.Alts[:0]
	for _, a := range b.Alts {
		merged := false
		for i := range out {
			if out[i].Tuple.Equal(a.Tuple) {
				out[i].Prob += a.Prob
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, a)
		}
	}
	// Zero the dropped tail so merged-away alternatives are not pinned by
	// the backing array.
	for i := len(out); i < len(b.Alts); i++ {
		b.Alts[i] = Alternative{}
	}
	b.Alts = out
}

// ObserveBlock conditions block index bi of the database in place. If the
// observation completes the tuple (no alternatives remain distinct), the
// block collapses into a certain tuple and later blocks shift down one
// index — positional indices are NOT stable across collapses. Callers
// that hand out long-lived block handles (the derivation engine's
// datasets) must key blocks by a stable identity of their own, such as
// the source tuple's input position.
func (db *Database) ObserveBlock(bi, attr, val int) error {
	if bi < 0 || bi >= len(db.Blocks) {
		return fmt.Errorf("pdb: block %d out of range", bi)
	}
	nb, err := db.Blocks[bi].Observe(attr, val)
	if err != nil {
		return err
	}
	if nb.Base.IsComplete() {
		// The observation determined the last missing value: the block
		// collapses to a certain tuple (Observe already merged equal
		// completions, so exactly one alternative remains).
		db.Certain = append(db.Certain, nb.Alts[0].Tuple)
		copy(db.Blocks[bi:], db.Blocks[bi+1:])
		db.Blocks[len(db.Blocks)-1] = nil // unpin the removed block
		db.Blocks = db.Blocks[:len(db.Blocks)-1]
		return nil
	}
	db.Blocks[bi] = nb
	return nil
}
