package pdb

import (
	"container/heap"
	"fmt"
	"math"
)

// TopKWorlds returns the k most probable possible worlds in descending
// probability order, without enumerating the full world space. Because
// blocks are independent, the search is a best-first expansion over
// per-block alternative ranks (each block's alternatives are already
// sorted by descending probability): the best world takes rank 0
// everywhere, and any world's successors bump a single block to the next
// rank. This is the classic k-shortest-paths style lazy enumeration.
func (db *Database) TopKWorlds(k int) ([]World, error) {
	if k < 1 {
		return nil, fmt.Errorf("pdb: k must be positive, got %d", k)
	}
	n := len(db.Blocks)
	if n == 0 {
		return []World{{Choice: []int{}, Prob: 1}}, nil
	}
	for bi, b := range db.Blocks {
		if len(b.Alts) == 0 {
			return nil, fmt.Errorf("pdb: block %d has no alternatives", bi)
		}
	}

	// Work in log space to avoid underflow on wide databases.
	logP := func(choice []int) float64 {
		var s float64
		for bi, r := range choice {
			p := db.Blocks[bi].Alts[r].Prob
			if p <= 0 {
				return math.Inf(-1)
			}
			s += math.Log(p)
		}
		return s
	}

	best := make([]int, n) // all rank 0
	pq := &worldQueue{}
	heap.Init(pq)
	heap.Push(pq, worldItem{choice: best, logP: logP(best)})
	seen := map[string]bool{key(best): true}

	var out []World
	for pq.Len() > 0 && len(out) < k {
		item := heap.Pop(pq).(worldItem)
		out = append(out, World{
			Choice: item.choice,
			Prob:   math.Exp(item.logP),
		})
		// Successors: bump one block to its next-ranked alternative.
		for bi := 0; bi < n; bi++ {
			if item.choice[bi]+1 >= len(db.Blocks[bi].Alts) {
				continue
			}
			next := append([]int(nil), item.choice...)
			next[bi]++
			kk := key(next)
			if seen[kk] {
				continue
			}
			seen[kk] = true
			heap.Push(pq, worldItem{choice: next, logP: logP(next)})
		}
	}
	return out, nil
}

func key(choice []int) string {
	b := make([]byte, 0, len(choice)*2)
	for _, c := range choice {
		for c >= 0x80 {
			b = append(b, byte(c)|0x80)
			c >>= 7
		}
		b = append(b, byte(c))
	}
	return string(b)
}

type worldItem struct {
	choice []int
	logP   float64
}

// worldQueue is a max-heap on logP.
type worldQueue []worldItem

func (q worldQueue) Len() int           { return len(q) }
func (q worldQueue) Less(i, j int) bool { return q[i].logP > q[j].logP }
func (q worldQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *worldQueue) Push(x any)        { *q = append(*q, x.(worldItem)) }
func (q *worldQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
