#!/bin/sh
# serve-smoke: the end-to-end serving gate of `make ci`. Builds mrslserve,
# learns a model from the checked-in matchmaking relation, boots the
# server on a kernel-assigned port, POSTs one derivation and one query,
# drives the live-evidence loop — register a dataset, query it, observe
# a delta, re-query — runs one intensional join query (multipart sql=
# statement over two CSV fragments), checks the stream and stats
# endpoints answer, and finally SIGTERMs the server expecting a clean
# graceful drain. Exits non-zero on any failure.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/mrslserve" ./cmd/mrslserve
go run ./cmd/mrsllearn -in testdata/matchmaking.csv -support 0.01 -out "$tmp/model.json"

"$tmp/mrslserve" -model "$tmp/model.json" -addr 127.0.0.1:0 -samples 200 -workers 4 >"$tmp/log" 2>&1 &
pid=$!

# boot_failed prints a diagnosis of a server that never came up. The
# common cause is a bind failure (port in use, permissions), which the
# server reports as "mrslserve: cannot bind ..." — call it out explicitly
# instead of leaving the reader to spot it in the log dump.
boot_failed() {
	if grep -q '^mrslserve: cannot bind ' "$tmp/log"; then
		echo "serve-smoke: server could not bind its address (is something else on the port?):"
		grep '^mrslserve: cannot bind ' "$tmp/log"
	else
		echo "serve-smoke: $1; full server log:"
	fi
	cat "$tmp/log"
	exit 1
}

addr=""
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's/^mrslserve: listening on //p' "$tmp/log" | head -n 1)
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || boot_failed "server died before announcing an address"
	sleep 0.1
	i=$((i + 1))
done
[ -n "$addr" ] || boot_failed "server never announced an address within 10s"

curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS -X POST --data-binary @testdata/matchmaking.csv "http://$addr/derive" >"$tmp/out.ndjson"

lines=$(wc -l <"$tmp/out.ndjson")
# 1 schema record + 17 tuples.
[ "$lines" -eq 18 ] || { echo "serve-smoke: got $lines NDJSON lines, want 18"; cat "$tmp/out.ndjson"; exit 1; }
grep -q '"kind":"block"' "$tmp/out.ndjson" || { echo "serve-smoke: no blocks in stream"; exit 1; }

curl -fsS -X POST --data-binary @testdata/matchmaking.csv \
	"http://$addr/query?op=count&where=age%3D20&explain=analyze&trace=1" >"$tmp/query.ndjson"
grep -q '"kind":"query"' "$tmp/query.ndjson" || { echo "serve-smoke: no query header record"; cat "$tmp/query.ndjson"; exit 1; }
grep -q '"kind":"count"' "$tmp/query.ndjson" || { echo "serve-smoke: no count record"; cat "$tmp/query.ndjson"; exit 1; }
grep -q '"kind":"summary"' "$tmp/query.ndjson" || { echo "serve-smoke: no summary record"; cat "$tmp/query.ndjson"; exit 1; }
# explain=analyze attaches measured timings to the summary's plan, and
# trace=1 appends the request's span record after it.
grep -q '"timing":{' "$tmp/query.ndjson" || { echo "serve-smoke: explain=analyze summary has no timing block"; cat "$tmp/query.ndjson"; exit 1; }
grep -q '"wall_ms":' "$tmp/query.ndjson" || { echo "serve-smoke: timing block has no wall_ms"; cat "$tmp/query.ndjson"; exit 1; }
grep -q '"kind":"trace"' "$tmp/query.ndjson" || { echo "serve-smoke: trace=1 produced no trace record"; cat "$tmp/query.ndjson"; exit 1; }

# Live evidence round trip: register the relation as a dataset, query
# it, apply one observation, and re-query — the re-query's plan must
# route the observed tuple through the exact conditioned tier.
sid=$(curl -fsS -X POST --data-binary @testdata/matchmaking.csv "http://$addr/datasets" \
	| sed 's/.*"id":"\([^"]*\)".*/\1/')
[ -n "$sid" ] || { echo "serve-smoke: dataset registration returned no id"; exit 1; }

curl -fsS -X POST "http://$addr/query?op=count&where=inc%3D50K&dataset=$sid" >"$tmp/pre.ndjson"
grep -q '"kind":"count"' "$tmp/pre.ndjson" || { echo "serve-smoke: no count record from dataset query"; cat "$tmp/pre.ndjson"; exit 1; }

# Tuple 0 (stream line 2, after the schema record) is "20 HS ? ?": its
# most probable income completion is consistent evidence by construction.
obsval=$(sed -n '2p' "$tmp/out.ndjson" | grep -o '"values":\[[^]]*\]' | head -n 1 | cut -d'"' -f8)
[ -n "$obsval" ] || { echo "serve-smoke: could not read tuple 0 income from the derive stream"; exit 1; }
curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"dataset\":\"$sid\",\"observations\":[{\"index\":0,\"attr\":\"inc\",\"value\":\"$obsval\"}]}" \
	"http://$addr/observe" | grep -q '"kind":"observed"' || { echo "serve-smoke: observe failed"; exit 1; }

curl -fsS -X POST "http://$addr/query?op=count&where=inc%3D50K&dataset=$sid" >"$tmp/post.ndjson"
grep -q '"observed":1' "$tmp/post.ndjson" || { echo "serve-smoke: re-query did not use the observed tier"; cat "$tmp/post.ndjson"; exit 1; }

# Intensional round trip: one SQL join query over HTTP, shipping both
# input fragments as multipart CSV files. The summary must carry the
# join plan block with the safety verdict.
cat >"$tmp/people.csv" <<'EOF'
age,edu,pid
20,HS,p1
20,BS,p1
30,?,p2
30,MS,p2
40,BS,p3
?,HS,p4
20,HS,?
40,?,p9
20,BS,p5
30,HS,p3
EOF
cat >"$tmp/finance.csv" <<'EOF'
pid,inc,nw
p1,?,100K
p2,100K,?
p3,50K,500K
p4,?,?
p5,100K,500K
EOF
curl -fsS -X POST \
	-F 'sql=from people join finance on pid=pid where age=20' \
	-F "people=@$tmp/people.csv" -F "finance=@$tmp/finance.csv" \
	"http://$addr/query?op=count" >"$tmp/sql.ndjson"
grep -q '"kind":"count"' "$tmp/sql.ndjson" || { echo "serve-smoke: no count record from sql join query"; cat "$tmp/sql.ndjson"; exit 1; }
grep -q '"join"' "$tmp/sql.ndjson" || { echo "serve-smoke: sql join query summary has no join plan"; cat "$tmp/sql.ndjson"; exit 1; }
grep -q '"verdict"' "$tmp/sql.ndjson" || { echo "serve-smoke: join plan has no safety verdict"; cat "$tmp/sql.ndjson"; exit 1; }

curl -fsS "http://$addr/stats" >"$tmp/stats.json"
# 6 offered inference requests: derive, batch query, pre-query, observe,
# re-query, sql join query (dataset registration runs no inference and
# is not counted).
grep -q '"requests":6' "$tmp/stats.json" || { echo "serve-smoke: stats did not count the requests"; cat "$tmp/stats.json"; exit 1; }
grep -q '"observations":1' "$tmp/stats.json" || { echo "serve-smoke: stats did not count the observation"; cat "$tmp/stats.json"; exit 1; }
grep -q '"datasets":1' "$tmp/stats.json" || { echo "serve-smoke: stats did not count the dataset"; cat "$tmp/stats.json"; exit 1; }

# Prometheus exposition: the per-endpoint request histogram must have
# counted the /query traffic above, the EngineStats counters must be
# exported as gauges, and build identity must be present. (/metrics is
# not admitted, so scraping never perturbs the "requests" count.)
curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt"
qcount=$(sed -n 's/^mrsl_http_request_seconds_count{path="\/query"} //p' "$tmp/metrics.txt")
[ -n "$qcount" ] && [ "$qcount" -ge 1 ] || { echo "serve-smoke: /metrics did not count the /query requests (got '$qcount')"; cat "$tmp/metrics.txt"; exit 1; }
grep -q '^mrsl_engine_queries ' "$tmp/metrics.txt" || { echo "serve-smoke: no EngineStats gauges on /metrics"; cat "$tmp/metrics.txt"; exit 1; }
grep -q '^mrsl_build_info{' "$tmp/metrics.txt" || { echo "serve-smoke: no build info on /metrics"; cat "$tmp/metrics.txt"; exit 1; }

# Graceful drain: SIGTERM must end the process cleanly (exit 0, drain
# farewell in the log) — the signal path the in-process tests can't reach.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "serve-smoke: server exited $status on SIGTERM, want clean drain"; cat "$tmp/log"; exit 1; }
grep -q '^mrslserve: drained, bye$' "$tmp/log" || { echo "serve-smoke: no drain farewell after SIGTERM:"; cat "$tmp/log"; exit 1; }

echo "serve-smoke: ok ($lines lines from $addr, dataset $sid observed inc=$obsval, drained clean)"
