#!/bin/sh
# serve-smoke: the end-to-end serving gate of `make ci`. Builds mrslserve,
# learns a model from the checked-in matchmaking relation, boots the
# server on a kernel-assigned port, POSTs one derivation, and checks the
# stream and stats endpoints answer. Exits non-zero on any failure.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/mrslserve" ./cmd/mrslserve
go run ./cmd/mrsllearn -in testdata/matchmaking.csv -support 0.01 -out "$tmp/model.json"

"$tmp/mrslserve" -model "$tmp/model.json" -addr 127.0.0.1:0 -samples 200 -workers 4 >"$tmp/log" 2>&1 &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's/^mrslserve: listening on //p' "$tmp/log" | head -n 1)
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: server died:"; cat "$tmp/log"; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$addr" ] || { echo "serve-smoke: server never announced an address"; cat "$tmp/log"; exit 1; }

curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS -X POST --data-binary @testdata/matchmaking.csv "http://$addr/derive" >"$tmp/out.ndjson"

lines=$(wc -l <"$tmp/out.ndjson")
# 1 schema record + 17 tuples.
[ "$lines" -eq 18 ] || { echo "serve-smoke: got $lines NDJSON lines, want 18"; cat "$tmp/out.ndjson"; exit 1; }
grep -q '"kind":"block"' "$tmp/out.ndjson" || { echo "serve-smoke: no blocks in stream"; exit 1; }

curl -fsS -X POST --data-binary @testdata/matchmaking.csv \
	"http://$addr/query?op=count&where=age%3D20" >"$tmp/query.ndjson"
grep -q '"kind":"query"' "$tmp/query.ndjson" || { echo "serve-smoke: no query header record"; cat "$tmp/query.ndjson"; exit 1; }
grep -q '"kind":"count"' "$tmp/query.ndjson" || { echo "serve-smoke: no count record"; cat "$tmp/query.ndjson"; exit 1; }
grep -q '"kind":"summary"' "$tmp/query.ndjson" || { echo "serve-smoke: no summary record"; cat "$tmp/query.ndjson"; exit 1; }

curl -fsS "http://$addr/stats" | grep -q '"requests":2' || { echo "serve-smoke: stats did not count the requests"; exit 1; }

echo "serve-smoke: ok ($lines lines from $addr)"
