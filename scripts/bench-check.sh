#!/bin/sh
# bench-check: guards serving throughput across PRs. Compares the
# BenchmarkEngineConcurrent tuples/s figures of a fresh run (published by
# `make bench-serve` into BENCH_engine.json) against the committed
# baseline (BENCH_baseline.json); exits non-zero when any stream count
# regresses by more than the tolerance (percent, default 30).
#
# Usage: bench-check.sh <baseline.json> <current.json> [tolerance-pct]
set -eu

base=${1:?usage: bench-check.sh baseline.json current.json [tolerance-pct]}
cur=${2:?usage: bench-check.sh baseline.json current.json [tolerance-pct]}
tol=${3:-30}

if [ ! -f "$base" ]; then
	echo "bench-check: no baseline at $base; skipping"
	exit 0
fi
if [ ! -f "$cur" ]; then
	echo "bench-check: no current run at $cur" >&2
	exit 1
fi

# Pull "streams=N <tuples/s>" pairs out of a go-test -json benchmark log.
# go test usually emits the benchmark name and its measurements as
# separate output events (pair each name with the next tuples/s line),
# but sometimes merges them into one line — handle both forms.
extract() {
	grep -o '"Output":"[^"]*"' "$1" | sed 's/^"Output":"//; s/"$//' |
		awk '
			/^BenchmarkEngineConcurrent\/streams=/ {
				name = $1
				sub(/^BenchmarkEngineConcurrent\//, "", name)
				sub(/-[0-9]+$/, "", name)
				if (/tuples\/s/) {
					for (i = 2; i <= NF; i++)
						if ($i ~ /^tuples\/s/) print name, $(i - 1)
					name = ""
				}
				next
			}
			name != "" && /tuples\/s/ {
				for (i = 2; i <= NF; i++)
					if ($i ~ /^tuples\/s/) print name, $(i - 1)
				name = ""
			}
		'
}

extract "$base" > /tmp/bench_base.$$
extract "$cur" > /tmp/bench_cur.$$
trap 'rm -f /tmp/bench_base.$$ /tmp/bench_cur.$$' EXIT

if [ ! -s /tmp/bench_base.$$ ] || [ ! -s /tmp/bench_cur.$$ ]; then
	echo "bench-check: could not extract tuples/s figures" >&2
	exit 1
fi

awk -v tol="$tol" '
	NR == FNR { base[$1] = $2; next }
	{
		cur[$1] = $2
		if (!($1 in base)) next
		floor = base[$1] * (100 - tol) / 100
		status = ($2 >= floor) ? "ok" : "REGRESSED"
		printf "bench-check: %-12s baseline %12.0f  current %12.0f  floor %12.0f  %s\n",
			$1, base[$1], $2, floor, status
		if ($2 < floor) bad = 1
	}
	END {
		for (k in base) if (!(k in cur)) {
			printf "bench-check: %s missing from current run\n", k
			bad = 1
		}
		exit bad
	}
' /tmp/bench_base.$$ /tmp/bench_cur.$$
