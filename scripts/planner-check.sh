#!/bin/sh
# planner-check: guards query-serving latency across PRs. Compares the
# ns/op figures of the query benchmarks in a fresh run (published by
# `make bench-planner` into BENCH_planner.json) against the committed
# baseline (BENCH_planner_baseline.json); exits non-zero when any of
# them slowed down by more than the tolerance (percent, default 30).
# A benchmark absent from the baseline (e.g. freshly added) is skipped
# with a note; refresh the baseline with `make bench-baseline`.
#
# Usage: planner-check.sh <baseline.json> <current.json> [tolerance-pct]
set -eu

base=${1:?usage: planner-check.sh baseline.json current.json [tolerance-pct]}
cur=${2:?usage: planner-check.sh baseline.json current.json [tolerance-pct]}
tol=${3:-30}

BENCHES="BenchmarkQueryPlanner BenchmarkQuerySafeJoin BenchmarkQueryDissociated
BenchmarkQueryAdaptive/adaptive BenchmarkQueryAdaptive/static
BenchmarkQueryAdversarial/adaptive BenchmarkQueryAdversarial/static"

if [ ! -f "$base" ]; then
	echo "planner-check: no baseline at $base; skipping"
	exit 0
fi
if [ ! -f "$cur" ]; then
	echo "planner-check: no current run at $cur" >&2
	exit 1
fi

# Pull one benchmark's ns/op figure out of a go-test -json log. The name
# and its measurements usually share one output line; tolerate the split
# form go test emits for sub-benchmarks too.
extract() {
	grep -o '"Output":"[^"]*"' "$1" | sed 's/^"Output":"//; s/"$//' |
		awk -v name="$2" '
			$1 ~ ("^" name "(-[0-9]+)?$") {
				for (i = 2; i <= NF; i++)
					if ($i ~ /^ns\/op/) { print $(i - 1); exit }
				pending = 1
				next
			}
			pending && /ns\/op/ {
				for (i = 2; i <= NF; i++)
					if ($i ~ /^ns\/op/) { print $(i - 1); exit }
			}
		'
}

status=0
for name in $BENCHES; do
	c=$(extract "$cur" "$name")
	if [ -z "$c" ]; then
		echo "planner-check: $name missing from current run" >&2
		status=1
		continue
	fi
	b=$(extract "$base" "$name")
	if [ -z "$b" ]; then
		echo "planner-check: $name has no baseline figure; skipping (refresh with make bench-baseline)"
		continue
	fi
	awk -v name="$name" -v b="$b" -v c="$c" -v tol="$tol" 'BEGIN {
		ceil = b * (100 + tol) / 100
		ok = (c <= ceil)
		printf "planner-check: %-28s baseline %12.0f ns/op  current %12.0f ns/op  ceiling %12.0f  %s\n",
			name, b, c, ceil, ok ? "ok" : "REGRESSED"
		exit ok ? 0 : 1
	}' || status=1
done
exit $status
