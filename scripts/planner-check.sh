#!/bin/sh
# planner-check: guards query-planning latency across PRs. Compares the
# BenchmarkQueryPlanner ns/op figure of a fresh run (published by
# `make bench-planner` into BENCH_planner.json) against the committed
# baseline (BENCH_planner_baseline.json); exits non-zero when planning
# slowed down by more than the tolerance (percent, default 30).
#
# Usage: planner-check.sh <baseline.json> <current.json> [tolerance-pct]
set -eu

base=${1:?usage: planner-check.sh baseline.json current.json [tolerance-pct]}
cur=${2:?usage: planner-check.sh baseline.json current.json [tolerance-pct]}
tol=${3:-30}

if [ ! -f "$base" ]; then
	echo "planner-check: no baseline at $base; skipping"
	exit 0
fi
if [ ! -f "$cur" ]; then
	echo "planner-check: no current run at $cur" >&2
	exit 1
fi

# Pull the ns/op figure out of a go-test -json benchmark log. The name
# and its measurements usually share one output line; tolerate the split
# form go test emits for sub-benchmarks too.
extract() {
	grep -o '"Output":"[^"]*"' "$1" | sed 's/^"Output":"//; s/"$//' |
		awk '
			/^BenchmarkQueryPlanner/ {
				for (i = 2; i <= NF; i++)
					if ($i ~ /^ns\/op/) { print $(i - 1); exit }
				pending = 1
				next
			}
			pending && /ns\/op/ {
				for (i = 2; i <= NF; i++)
					if ($i ~ /^ns\/op/) { print $(i - 1); exit }
			}
		'
}

b=$(extract "$base")
c=$(extract "$cur")
if [ -z "$b" ] || [ -z "$c" ]; then
	echo "planner-check: could not extract ns/op figures" >&2
	exit 1
fi

awk -v b="$b" -v c="$c" -v tol="$tol" 'BEGIN {
	ceil = b * (100 + tol) / 100
	status = (c <= ceil) ? "ok" : "REGRESSED"
	printf "planner-check: baseline %12.0f ns/op  current %12.0f ns/op  ceiling %12.0f  %s\n",
		b, c, ceil, status
	exit (c > ceil) ? 1 : 0
}'
