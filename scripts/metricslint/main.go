// Command metricslint is the helper behind scripts/metrics-lint.sh: it
// verifies that every EngineStats counter round-trips through the
// Prometheus exporter mrslserve's GET /metrics uses (the reflection
// walk in WriteEngineStatsMetrics, so a renamed or added field can
// never silently drop out of the exposition), then prints the exported
// metric names one per line for the shell side to check against
// README.md's metric table.
package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var buf bytes.Buffer
	repro.WriteEngineStatsMetrics(&buf, "mrsl_engine_", repro.EngineStats{})
	exported := buf.String()
	ok := true
	for _, name := range repro.EngineStatsMetricNames("mrsl_engine_") {
		if !strings.Contains(exported, name+" ") {
			fmt.Fprintf(os.Stderr, "metricslint: %s not in WriteEngineStatsMetrics output\n", name)
			ok = false
			continue
		}
		fmt.Println(name)
	}
	if !ok {
		os.Exit(1)
	}
}
