#!/bin/sh
# metrics-lint: every EngineStats counter must be exported on
# GET /metrics and named in README.md's metric table.
#
# The export half is structural: scripts/metricslint renders a zero
# EngineStats through the exact exporter mrslserve's /metrics handler
# calls (WriteEngineStatsMetrics) and fails if any field of the struct
# is missing from the output. The documentation half greps each exported
# name out of README.md, so adding a counter without documenting it (or
# renaming one without updating the table) fails ci.
set -eu
cd "$(dirname "$0")/.."

names=$(go run ./scripts/metricslint) || {
    echo "metrics-lint: EngineStats export check failed" >&2
    exit 1
}

fail=0
for n in $names; do
    if ! grep -q "\`$n\`" README.md; then
        echo "metrics-lint: $n is exported on /metrics but missing from README.md's metric table" >&2
        fail=1
    fi
done
[ "$fail" -eq 0 ] || exit 1

count=$(printf '%s\n' "$names" | wc -l | tr -d ' ')
echo "metrics-lint: $count EngineStats metrics exported and documented"
