// The sensors example plays out the paper's scientific-data-management
// motivation: a field of environmental sensors reports discretized
// (temperature, humidity, light, voltage, status) readings; radio dropouts
// leave holes in the log. An MRSL model learned from intact readings infers
// distributions over the missing fields. Because whole transmissions drop
// together, many incomplete readings share evidence patterns, and the
// tuple-DAG optimization (Algorithm 3) pays off — the example measures the
// saving directly against tuple-at-a-time sampling.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/gibbs"
)

// The sensor model: temperature drives humidity (inversely) and, with
// light, reflects day/night; low voltage correlates with flaky status.
func sampleReading(rng *rand.Rand) []int {
	day := rng.Float64() < 0.5
	temp := rng.Intn(2) // 0 cool, 1 warm
	if day && rng.Float64() < 0.6 {
		temp = 1
	}
	humid := 1 - temp // humid when cool...
	if rng.Float64() < 0.25 {
		humid = rng.Intn(2) // ...mostly
	}
	light := 0
	if day && rng.Float64() < 0.85 {
		light = 1
	}
	volt := rng.Intn(3) // 0 low, 1 mid, 2 full
	status := 0         // ok
	if volt == 0 && rng.Float64() < 0.7 {
		status = 1 // flaky
	}
	return []int{temp, humid, light, volt, status}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; factored out of main so tests can call it.
func run() error {
	rng := rand.New(rand.NewSource(77))
	schema, err := repro.NewSchema([]repro.Attribute{
		{Name: "temp", Domain: []string{"cool", "warm"}},
		{Name: "humid", Domain: []string{"dry", "humid"}},
		{Name: "light", Domain: []string{"dark", "bright"}},
		{Name: "volt", Domain: []string{"low", "mid", "full"}},
		{Name: "status", Domain: []string{"ok", "flaky"}},
	})
	if err != nil {
		return err
	}

	// 8000 intact readings for training.
	train := repro.NewRelation(schema)
	for i := 0; i < 8000; i++ {
		tu := make(repro.Tuple, 5)
		copy(tu, sampleReading(rng))
		if err := train.Append(tu); err != nil {
			return err
		}
	}
	model, err := repro.Learn(train, repro.LearnOptions{SupportThreshold: 0.005})
	if err != nil {
		return err
	}
	fmt.Printf("model: %d meta-rules from %d readings (%s)\n",
		model.Size(), model.Stats.TrainingSize, model.Stats.BuildTime)

	// A workload of 400 damaged readings. Dropouts hit field groups, so the
	// same missing patterns recur — ideal for the tuple DAG.
	patterns := [][]int{
		{0, 1},       // climate fields lost
		{2},          // light sensor lost
		{0, 1, 2},    // whole climate packet lost
		{3, 4},       // power telemetry lost
		{0, 1, 2, 3}, // near-total loss
	}
	var workload []repro.Tuple
	for i := 0; i < 400; i++ {
		tu := make(repro.Tuple, 5)
		copy(tu, sampleReading(rng))
		for _, a := range patterns[rng.Intn(len(patterns))] {
			tu[a] = repro.Missing
		}
		workload = append(workload, tu)
	}

	// Tuple-at-a-time vs tuple-DAG (Fig. 11 in miniature).
	measure := func(name string, f func(*gibbs.Sampler) (*gibbs.Result, error)) (*gibbs.Result, error) {
		s, err := gibbs.New(model, gibbs.Config{
			Samples: 500, BurnIn: 100, Method: repro.BestAveraged(), Seed: 13,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := f(s)
		if err != nil {
			return nil, err
		}
		fmt.Printf("%-16s %5d distinct tuples, %8d sampled points, %v\n",
			name, len(res.Tuples), res.PointsSampled, time.Since(start).Round(time.Millisecond))
		return res, nil
	}
	base, err := measure("tuple-at-a-time", func(s *gibbs.Sampler) (*gibbs.Result, error) {
		return s.TupleAtATime(workload)
	})
	if err != nil {
		return err
	}
	dag, err := measure("tuple-DAG", func(s *gibbs.Sampler) (*gibbs.Result, error) {
		return s.TupleDAGRun(workload)
	})
	if err != nil {
		return err
	}
	saving := 1 - float64(dag.PointsSampled)/float64(base.PointsSampled)
	fmt.Printf("tuple-DAG saved %.0f%% of sampled points\n\n", saving*100)

	// Inspect one repaired reading.
	for i, tu := range dag.Tuples {
		if tu.NumMissing() != 3 {
			continue
		}
		fmt.Printf("damaged reading: %s\n", tu.Format(schema))
		j := dag.Dists[i]
		best := j.P.ArgMax()
		vals := j.Values(best)
		fmt.Printf("most probable repair (p=%.2f):", j.P[best])
		for k, a := range j.Attrs {
			fmt.Printf(" %s=%s", schema.Attrs[a].Name, schema.Attrs[a].Domain[vals[k]])
		}
		fmt.Println()
		break
	}
	return nil
}
