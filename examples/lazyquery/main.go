// The lazyquery example demonstrates the paper's future-work proposal
// (Section VIII): lazy, query-targeted inference with partial
// materialization. A large incomplete relation is wrapped in a LazyDB;
// structured queries are answered by classifying tuples against the
// query's conditions — most tuples are decided by their known values and
// cost nothing, single-open-condition tuples cost one voted CPD lookup,
// and only multi-open tuples pay for Gibbs sampling. The example contrasts
// the work counters with eagerly deriving the full probabilistic database.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/bn"
	"repro/internal/relation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; factored out of main so tests can call it.
func run() error {
	rng := rand.New(rand.NewSource(31))

	// Data: BN9 (6 binary attributes, crown-shaped). 30% of tuples lose
	// one to three values.
	top, err := bn.ByID("BN9")
	if err != nil {
		return err
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		return err
	}
	train := inst.SampleRelation(rng, 20000)
	model, err := repro.Learn(train, repro.LearnOptions{SupportThreshold: 0.002})
	if err != nil {
		return err
	}

	rel := repro.NewRelation(train.Schema)
	for i := 0; i < 5000; i++ {
		tu := inst.Sample(rng)
		if rng.Float64() < 0.3 {
			k := 1 + rng.Intn(3)
			for _, a := range rng.Perm(6)[:k] {
				tu[a] = relation.Missing
			}
		}
		if err := rel.Append(tu); err != nil {
			return err
		}
	}
	fmt.Printf("relation: %d tuples, model: %d meta-rules\n", rel.Len(), model.Size())

	// Query: expected number of tuples with a0 = v1 AND a4 = v0.
	q := repro.ConjQuery{{Attr: 0, Value: 1}, {Attr: 4, Value: 0}}

	// Lazy path.
	lazyDB, err := repro.NewLazyDB(model, rel, repro.GibbsOptions{
		Samples: 500, BurnIn: 50, Seed: 9, Method: repro.BestAveraged(),
	})
	if err != nil {
		return err
	}
	start := time.Now()
	lazyCount, err := lazyDB.ExpectedCount(q)
	if err != nil {
		return err
	}
	lazyTime := time.Since(start)
	st := lazyDB.Stats()
	fmt.Printf("\nlazy:  E[count] = %.1f in %v\n", lazyCount, lazyTime.Round(time.Millisecond))
	fmt.Printf("       decided from known values: %d refuted + %d entailed\n", st.Refuted, st.Entailed)
	fmt.Printf("       inference performed: %d CPD lookups, %d Gibbs runs\n",
		st.SingleLookups, st.GibbsRuns)

	// Re-running the same query hits the materialized cache.
	start = time.Now()
	if _, err := lazyDB.ExpectedCount(q); err != nil {
		return err
	}
	fmt.Printf("       repeat query: %v (%d cache hits)\n",
		time.Since(start).Round(time.Microsecond), lazyDB.Stats().CacheHits)

	// Eager path: derive every block up front, then evaluate.
	start = time.Now()
	eager, err := repro.Derive(model, rel, repro.DeriveOptions{
		Method: repro.BestAveraged(),
		Gibbs: repro.GibbsOptions{
			Samples: 500, BurnIn: 50, Seed: 9, Method: repro.BestAveraged(),
		},
	})
	if err != nil {
		return err
	}
	eagerCount := eager.ExpectedCount(q.Predicate())
	fmt.Printf("\neager: E[count] = %.1f in %v (%d blocks materialized)\n",
		eagerCount, time.Since(start).Round(time.Millisecond), len(eager.Blocks))

	// A second, more selective query shows the benefit compounding: the
	// lazy DB only infers for tuples that are open on the *new* conditions.
	q2 := repro.ConjQuery{{Attr: 1, Value: 0}}
	before := lazyDB.Stats()
	c2, err := lazyDB.ExpectedCount(q2)
	if err != nil {
		return err
	}
	after := lazyDB.Stats()
	fmt.Printf("\nsecond query E[a1=v0] = %.1f: %d new lookups, %d new Gibbs runs\n",
		c2, after.SingleLookups-before.SingleLookups, after.GibbsRuns-before.GibbsRuns)

	return intensional(model, rel)
}

// intensional runs the multi-relation finale: the same conjunctive
// questions, but asked through the SQL-ish SPJ surface over two joined
// fragments of the relation. The safety analyzer decides per plan
// whether the extensional answer is exact; an unsafe exists reports the
// dissociated mass with its sound interval instead of silently
// overcounting shared lineage.
func intensional(model *repro.Model, rel *repro.Relation) error {
	// Split the first rows vertically: suitors(a0..a2, key) and
	// profiles(key, a3..a5), joined on a synthetic row key the model does
	// not know. Unique keys keep lineage read-once.
	const nJoin = 300
	keyDom := make([]string, nJoin)
	for i := range keyDom {
		keyDom[i] = fmt.Sprintf("r%d", i)
	}
	keyAttr := relation.Attribute{Name: "key", Domain: keyDom}
	ma := model.Schema.Attrs
	leftSchema, err := relation.NewSchema([]relation.Attribute{ma[0], ma[1], ma[2], keyAttr})
	if err != nil {
		return err
	}
	rightSchema, err := relation.NewSchema([]relation.Attribute{keyAttr, ma[3], ma[4], ma[5]})
	if err != nil {
		return err
	}
	suitors, profiles := repro.NewRelation(leftSchema), repro.NewRelation(rightSchema)
	for i, tu := range rel.Tuples[:nJoin] {
		if err := suitors.Append(relation.Tuple{tu[0], tu[1], tu[2], i}); err != nil {
			return err
		}
		if err := profiles.Append(relation.Tuple{i, tu[3], tu[4], tu[5]}); err != nil {
			return err
		}
	}
	// Two extra suitors share profile r0 and profile r0 loses a4: any
	// plan that depends on a4 now reads that uncertain tuple twice.
	profiles.Tuples[0][2] = relation.Missing
	for _, extra := range [][]int{{0, 1, 0, 0}, {1, 0, 1, 0}} {
		if err := suitors.Append(relation.Tuple(extra)); err != nil {
			return err
		}
	}

	eng, err := repro.NewEngine(model, repro.DeriveOptions{
		Method: repro.BestAveraged(),
		Gibbs: repro.GibbsOptions{
			Samples: 500, BurnIn: 50, Seed: 9, Method: repro.BestAveraged(),
		},
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	inputs := map[string]*repro.Relation{"suitors": suitors, "profiles": profiles}

	ask := func(stmt string, spec repro.QuerySpec) (*repro.QueryResult, *repro.CompiledSPJ, error) {
		st, err := repro.ParseSPJ(stmt)
		if err != nil {
			return nil, nil, err
		}
		spjSpec, err := st.Bind(inputs, spec, false)
		if err != nil {
			return nil, nil, err
		}
		spj, err := repro.CompileSPJ(model.Schema, spjSpec)
		if err != nil {
			return nil, nil, err
		}
		res, err := eng.QuerySPJ(ctx, spj)
		return res, spj, err
	}

	// The a0 count touches only the never-shared left fragment: the plan
	// is hierarchical and the extensional answer exact.
	res, spj, err := ask("from suitors join profiles on key=key where a0=v1", repro.QuerySpec{Op: repro.QueryCount})
	if err != nil {
		return err
	}
	fmt.Printf("\nintensional count(a0=v1): E = %.1f — %s\n", res.Expected, spj.JoinInfo().Verdict)

	// The a4 exists reads profile r0's missing a4 through two joined
	// rows: the plan dissociates, and the answer carries its interval.
	res, spj, err = ask("from suitors join profiles on key=key where a0=v1,a4=v0", repro.QuerySpec{Op: repro.QueryExists})
	if err != nil {
		return err
	}
	fmt.Printf("intensional exists(a0=v1, a4=v0): P = %.4f — %s\n", res.Prob, spj.JoinInfo().Verdict)
	if res.Dissociated && res.Bounds != nil {
		fmt.Printf("  dissociated: intensional mass within [%.4f, %.4f]\n", res.Bounds.Lo, res.Bounds.Hi)
	}
	return nil
}
