// The lazyquery example demonstrates the paper's future-work proposal
// (Section VIII): lazy, query-targeted inference with partial
// materialization. A large incomplete relation is wrapped in a LazyDB;
// structured queries are answered by classifying tuples against the
// query's conditions — most tuples are decided by their known values and
// cost nothing, single-open-condition tuples cost one voted CPD lookup,
// and only multi-open tuples pay for Gibbs sampling. The example contrasts
// the work counters with eagerly deriving the full probabilistic database.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/bn"
	"repro/internal/relation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; factored out of main so tests can call it.
func run() error {
	rng := rand.New(rand.NewSource(31))

	// Data: BN9 (6 binary attributes, crown-shaped). 30% of tuples lose
	// one to three values.
	top, err := bn.ByID("BN9")
	if err != nil {
		return err
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		return err
	}
	train := inst.SampleRelation(rng, 20000)
	model, err := repro.Learn(train, repro.LearnOptions{SupportThreshold: 0.002})
	if err != nil {
		return err
	}

	rel := repro.NewRelation(train.Schema)
	for i := 0; i < 5000; i++ {
		tu := inst.Sample(rng)
		if rng.Float64() < 0.3 {
			k := 1 + rng.Intn(3)
			for _, a := range rng.Perm(6)[:k] {
				tu[a] = relation.Missing
			}
		}
		if err := rel.Append(tu); err != nil {
			return err
		}
	}
	fmt.Printf("relation: %d tuples, model: %d meta-rules\n", rel.Len(), model.Size())

	// Query: expected number of tuples with a0 = v1 AND a4 = v0.
	q := repro.ConjQuery{{Attr: 0, Value: 1}, {Attr: 4, Value: 0}}

	// Lazy path.
	lazyDB, err := repro.NewLazyDB(model, rel, repro.GibbsOptions{
		Samples: 500, BurnIn: 50, Seed: 9, Method: repro.BestAveraged(),
	})
	if err != nil {
		return err
	}
	start := time.Now()
	lazyCount, err := lazyDB.ExpectedCount(q)
	if err != nil {
		return err
	}
	lazyTime := time.Since(start)
	st := lazyDB.Stats()
	fmt.Printf("\nlazy:  E[count] = %.1f in %v\n", lazyCount, lazyTime.Round(time.Millisecond))
	fmt.Printf("       decided from known values: %d refuted + %d entailed\n", st.Refuted, st.Entailed)
	fmt.Printf("       inference performed: %d CPD lookups, %d Gibbs runs\n",
		st.SingleLookups, st.GibbsRuns)

	// Re-running the same query hits the materialized cache.
	start = time.Now()
	if _, err := lazyDB.ExpectedCount(q); err != nil {
		return err
	}
	fmt.Printf("       repeat query: %v (%d cache hits)\n",
		time.Since(start).Round(time.Microsecond), lazyDB.Stats().CacheHits)

	// Eager path: derive every block up front, then evaluate.
	start = time.Now()
	eager, err := repro.Derive(model, rel, repro.DeriveOptions{
		Method: repro.BestAveraged(),
		Gibbs: repro.GibbsOptions{
			Samples: 500, BurnIn: 50, Seed: 9, Method: repro.BestAveraged(),
		},
	})
	if err != nil {
		return err
	}
	eagerCount := eager.ExpectedCount(q.Predicate())
	fmt.Printf("\neager: E[count] = %.1f in %v (%d blocks materialized)\n",
		eagerCount, time.Since(start).Round(time.Millisecond), len(eager.Blocks))

	// A second, more selective query shows the benefit compounding: the
	// lazy DB only infers for tuples that are open on the *new* conditions.
	q2 := repro.ConjQuery{{Attr: 1, Value: 0}}
	before := lazyDB.Stats()
	c2, err := lazyDB.ExpectedCount(q2)
	if err != nil {
		return err
	}
	after := lazyDB.Stats()
	fmt.Printf("\nsecond query E[a1=v0] = %.1f: %d new lookups, %d new Gibbs runs\n",
		c2, after.SingleLookups-before.SingleLookups, after.GibbsRuns-before.GibbsRuns)
	return nil
}
