// The matchmaking example scales the paper's motivating scenario up: a
// synthetic profile relation (age, education, income, net worth) with
// correlated attributes is generated, a slice of values goes missing, an
// MRSL model is learned from the complete part, the incomplete relation is
// turned into a disjoint-independent probabilistic database with Derive,
// and the database is queried under possible-worlds semantics — e.g. "what
// is the expected number of profiles with income 100K and net worth 500K?".
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
	"repro/internal/pdb"
)

// profile generation parameters: age and education drive income, income
// drives net worth — the correlations the paper's introduction observes.
var (
	ages = []string{"20", "30", "40"}
	edus = []string{"HS", "BS", "MS"}
	incs = []string{"50K", "100K"}
	nws  = []string{"100K", "500K"}
)

func sampleProfile(rng *rand.Rand) []int {
	age := rng.Intn(3)
	edu := rng.Intn(3)
	// P(inc=100K) grows with age and education.
	pInc := 0.15 + 0.2*float64(age) + 0.15*float64(edu)
	inc := 0
	if rng.Float64() < pInc {
		inc = 1
	}
	// P(nw=500K) grows with income and age.
	pNw := 0.2 + 0.4*float64(inc) + 0.1*float64(age)
	nw := 0
	if rng.Float64() < pNw {
		nw = 1
	}
	return []int{age, edu, inc, nw}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; factored out of main so tests can call it.
func run() error {
	rng := rand.New(rand.NewSource(2011))
	schema, err := repro.NewSchema([]repro.Attribute{
		{Name: "age", Domain: ages},
		{Name: "edu", Domain: edus},
		{Name: "inc", Domain: incs},
		{Name: "nw", Domain: nws},
	})
	if err != nil {
		return err
	}

	// 5000 profiles; 15% lose one or two attribute values.
	rel := repro.NewRelation(schema)
	for i := 0; i < 5000; i++ {
		vals := sampleProfile(rng)
		tu := make(repro.Tuple, 4)
		copy(tu, vals)
		if rng.Float64() < 0.15 {
			k := 1 + rng.Intn(2)
			for _, a := range rng.Perm(4)[:k] {
				tu[a] = repro.Missing
			}
		}
		if err := rel.Append(tu); err != nil {
			return err
		}
	}
	rc, ri := rel.Split()
	fmt.Printf("relation: %d profiles (%d complete, %d incomplete)\n",
		rel.Len(), rc.Len(), ri.Len())

	// Learn the MRSL model from the complete part.
	model, err := repro.Learn(rel, repro.LearnOptions{SupportThreshold: 0.005})
	if err != nil {
		return err
	}
	fmt.Printf("model: %d meta-rules, built in %s\n", model.Size(), model.Stats.BuildTime)

	// Derive the probabilistic database.
	db, err := repro.Derive(model, rel, repro.DeriveOptions{
		Method: repro.BestAveraged(),
		Gibbs: repro.GibbsOptions{
			Samples: 1000, BurnIn: 100, Seed: 7, Method: repro.BestAveraged(),
		},
	})
	if err != nil {
		return err
	}
	worlds := "more than 2^63"
	if n := db.NumWorlds(); n >= 0 {
		worlds = fmt.Sprintf("%d", n)
	}
	fmt.Printf("derived database: %d certain tuples, %d blocks, %s possible worlds\n",
		len(db.Certain), len(db.Blocks), worlds)

	// Show one block in the style of the Fig. 1 call-out.
	for _, b := range db.Blocks {
		if b.Base.NumMissing() == 2 {
			fmt.Printf("\nexample block for %s:\n", b.Base.Format(schema))
			for _, alt := range b.Alts {
				fmt.Printf("  %s  prob %.3f\n", alt.Tuple.Format(schema), alt.Prob)
			}
			break
		}
	}

	// Query the probabilistic database.
	inc := schema.AttrIndex("inc")
	nw := schema.AttrIndex("nw")
	rich := pdb.And(pdb.Eq(inc, 1), pdb.Eq(nw, 1))

	exp := db.ExpectedCount(rich)
	variance := db.CountVariance(rich)
	fmt.Printf("\nQ1: expected # profiles with inc=100K and nw=500K = %.1f (stddev %.2f)\n",
		exp, math.Sqrt(variance))

	mc := db.MonteCarloCount(rich, rng, 2000)
	fmt.Printf("Q1 (Monte Carlo over 2000 worlds): %.1f\n", mc)

	age := schema.AttrIndex("age")
	youngRich := pdb.And(pdb.Eq(age, 0), rich)
	fmt.Printf("Q2: P(at least one 20-year-old with inc=100K, nw=500K among uncertain) = %.3f\n",
		blockOnlyAnyProb(db, youngRich))

	// Most probable world: the deterministic completion a cleaning system
	// would commit to.
	w := db.MostProbableWorld()
	fmt.Printf("Q3: most probable world has probability %.3g\n", w.Prob)
	return nil
}

// blockOnlyAnyProb evaluates AnyProb over the uncertain blocks only, to
// show a non-trivial probability (certain matches force 1).
func blockOnlyAnyProb(db *repro.Database, pred pdb.Predicate) float64 {
	q := 1.0
	for _, b := range db.Blocks {
		q *= 1 - b.Prob(pred)
	}
	return 1 - q
}
