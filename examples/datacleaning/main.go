// The datacleaning example measures imputation quality the way the paper's
// evaluation does, but on a census-style cleaning task: a ground-truth
// relation is generated, values are knocked out, the MRSL pipeline derives
// a probabilistic database, and the most probable completion of every block
// is compared with the hidden truth. The probabilistic output is also
// scored with KL divergence against the generating network, and the
// single-value imputation accuracy is compared across all four voting
// methods and a random-guess floor.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/baseline"
	"repro/internal/bn"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/vote"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; factored out of main so tests can call it.
func run() error {
	rng := rand.New(rand.NewSource(5))

	// Ground truth generator: BN10 (6 attributes, cardinality 4) from the
	// paper's benchmark — a crown-shaped network with strong
	// parent-child correlations.
	top, err := bn.ByID("BN10")
	if err != nil {
		return err
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		return err
	}
	schema := top.Schema()

	// 20000 clean records for training; 2000 dirty records to repair.
	train := inst.SampleRelation(rng, 20000)
	model, err := repro.Learn(train, repro.LearnOptions{SupportThreshold: 0.002})
	if err != nil {
		return err
	}
	fmt.Printf("model: %d meta-rules (%s)\n", model.Size(), model.Stats.BuildTime)

	type dirty struct {
		truth  relation.Tuple
		broken relation.Tuple
	}
	var records []dirty
	dirtyRel := repro.NewRelation(schema)
	for i := 0; i < 2000; i++ {
		truth := inst.Sample(rng)
		broken := truth.Clone()
		k := 1 + rng.Intn(2) // 1 or 2 values lost
		for _, a := range rng.Perm(top.NumAttrs())[:k] {
			broken[a] = relation.Missing
		}
		records = append(records, dirty{truth: truth, broken: broken})
		if err := dirtyRel.Append(broken); err != nil {
			return err
		}
	}

	// Derive the probabilistic database over the dirty records and score
	// it block by block as it streams — no materialized database. Blocks
	// arrive in input order, but records are still matched by their
	// incomplete tuple's key (multiset semantics: records with identical
	// damage consume matching blocks one each), so the scoring does not
	// depend on emission order.
	pending := make(map[string][]int) // base key -> record indices
	for i, rec := range records {
		k := rec.broken.Key()
		pending[k] = append(pending[k], i)
	}
	matchRecord := func(b *repro.Block) (dirty, error) {
		k := b.Base.Key()
		idxs := pending[k]
		if len(idxs) == 0 {
			return dirty{}, fmt.Errorf("no record for block %v", b.Base)
		}
		rec := records[idxs[0]]
		pending[k] = idxs[1:]
		return rec, nil
	}
	var cellsRepaired, cellsCorrect, tuplesCorrect, blocks int
	var klSum float64
	eng, err := repro.NewEngine(model, repro.DeriveOptions{
		Method: repro.BestAveraged(),
		Gibbs: repro.GibbsOptions{
			Samples: 800, BurnIn: 100, Seed: 3, Method: repro.BestAveraged(),
		},
	})
	if err != nil {
		return err
	}
	err = eng.DeriveStream(dirtyRel, func(it repro.DeriveItem) error {
		if it.Certain() {
			return nil
		}
		b := it.Block
		blocks++
		rec, err := matchRecord(b)
		if err != nil {
			return err
		}

		// Repair = most probable alternative; score against truth.
		repair := b.MostProbable().Tuple
		allRight := true
		for a, v := range rec.broken {
			if v != relation.Missing {
				continue
			}
			cellsRepaired++
			if repair[a] == rec.truth[a] {
				cellsCorrect++
			} else {
				allRight = false
			}
		}
		if allRight {
			tuplesCorrect++
		}

		// Distribution quality: KL of the block's distribution vs the
		// exact conditional of the generating network.
		truthDist, err := inst.Conditional(rec.broken)
		if err != nil {
			return err
		}
		pred := truthDist.Clone()
		for j := range pred.P {
			pred.P[j] = 0
		}
		vals := make([]int, len(pred.Attrs))
		for _, alt := range b.Alts {
			for k, a := range pred.Attrs {
				vals[k] = alt.Tuple[a]
			}
			pred.P[pred.Index(vals)] = alt.Prob
		}
		pred.P.Smooth(dist.SmoothFloor)
		kl, err := dist.KLJoint(truthDist, pred)
		if err != nil {
			return err
		}
		klSum += kl
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("repaired %d cells: %.1f%% of cells correct, %.1f%% of tuples fully correct\n",
		cellsRepaired,
		100*float64(cellsCorrect)/float64(cellsRepaired),
		100*float64(tuplesCorrect)/float64(blocks))
	fmt.Printf("mean KL(truth || derived block) = %.3f over %d blocks\n", klSum/float64(blocks), blocks)
	st := eng.Stats()
	fmt.Printf("engine caches: %d/%d single-missing voted (%.0f%% hit), %d/%d multi-missing sampled (%.0f%% hit)\n",
		st.VotesComputed, st.SingleTuples, 100*st.VoteHitRate(),
		st.GibbsComputed, st.MultiTuples, 100*st.GibbsHitRate())

	// Single-cell imputation shoot-out across voting methods, plus the
	// random floor (paper Table II's framing).
	fmt.Println("\nsingle-cell imputation accuracy by voting method:")
	methods := []struct {
		name string
		m    repro.Method
	}{
		{"all averaged", repro.AllAveraged()},
		{"all weighted", repro.AllWeighted()},
		{"best averaged", repro.BestAveraged()},
		{"best weighted", repro.BestWeighted()},
	}
	var randomFloor float64
	for _, mtd := range methods {
		var correct, total int
		for _, rec := range records {
			if rec.broken.NumMissing() != 1 {
				continue
			}
			attr := rec.broken.MissingAttrs()[0]
			d, err := vote.Infer(model, rec.broken, attr, mtd.m)
			if err != nil {
				return err
			}
			if d.ArgMax() == rec.truth[attr] {
				correct++
			}
			total++
		}
		fmt.Printf("  %-14s %.1f%% of %d\n", mtd.name, 100*float64(correct)/float64(total), total)
	}
	for _, rec := range records {
		if rec.broken.NumMissing() == 1 {
			p, err := baseline.RandomGuessTop1(schema, rec.broken)
			if err != nil {
				return err
			}
			randomFloor = p
			break
		}
	}
	fmt.Printf("  %-14s %.1f%%\n", "random guess", 100*randomFloor)
	return nil
}
