// The quickstart example walks through the paper's running example
// (Figures 1-3): the incomplete matchmaking relation of Fig. 1 is loaded,
// an MRSL model is learned from its complete tuples (Algorithm 1), the
// meta-rule semi-lattice for `age` is printed (Fig. 2), the tuple DAG over
// the incomplete tuples is shown (Fig. 3), and the distribution over the
// missing values of t12 = ⟨30, MS, ?, ?⟩ — the Delta_t12 call-out of
// Fig. 1 — is inferred by Gibbs sampling.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/gibbs"
	"repro/internal/relation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; factored out of main so tests can call it.
func run() error {
	// The Fig. 1 relation: 8 complete profiles, 9 incomplete ones.
	rel := relation.Matchmaking()
	fmt.Println("== Fig 1: the incomplete relation R ==")
	for i, t := range rel.Tuples {
		fmt.Printf("t%-2d %s\n", i+1, t.Format(rel.Schema))
	}

	// Learning phase (Algorithm 1). The toy relation is tiny, so a very
	// permissive support threshold is used.
	model, err := repro.Learn(rel, repro.LearnOptions{SupportThreshold: 0.01})
	if err != nil {
		return err
	}
	fmt.Printf("\nlearned %d meta-rules from %d complete tuples in %s\n",
		model.Size(), model.Stats.TrainingSize, model.Stats.BuildTime)

	// Fig. 2: the meta-rule semi-lattice for age.
	age := rel.Schema.AttrIndex("age")
	lattice, err := model.Lattice(age)
	if err != nil {
		return err
	}
	fmt.Println("\n== Fig 2: MRSL for age ==")
	fmt.Print(lattice.Render(rel.Schema))

	// Single-attribute inference (Algorithm 2) for t1 = ⟨?, HS, 50K, 500K⟩,
	// under all four voting methods of Section IV.
	t1 := repro.Tuple{repro.Missing, 0, 0, 1}
	fmt.Printf("\n== Algorithm 2: estimating P(age) for %s ==\n", t1.Format(rel.Schema))
	for _, method := range []struct {
		name string
		m    repro.Method
	}{
		{"all averaged", repro.AllAveraged()},
		{"all weighted", repro.AllWeighted()},
		{"best averaged", repro.BestAveraged()},
		{"best weighted", repro.BestWeighted()},
	} {
		d, err := repro.InferSingle(model, t1, age, method.m)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s -> %s\n", method.name, d)
	}

	// Fig. 3: the tuple DAG over a subset of the incomplete tuples.
	fmt.Println("\n== Fig 3: tuple DAG for workload {t1, t3, t5, t8, t11, t12} ==")
	pick := func(i int) repro.Tuple { return rel.Tuples[i-1] }
	names := map[string]string{
		pick(1).Key():  "t1",
		pick(3).Key():  "t3",
		pick(5).Key():  "t5",
		pick(8).Key():  "t8",
		pick(11).Key(): "t11",
		pick(12).Key(): "t12",
	}
	workload := []repro.Tuple{pick(1), pick(3), pick(5), pick(8), pick(11), pick(12)}
	dag, err := gibbs.BuildTupleDAG(workload)
	if err != nil {
		return err
	}
	for _, r := range dag.Roots {
		fmt.Printf("  root %-3s %s\n", names[dag.Tuples[r].Key()], dag.Tuples[r].Format(rel.Schema))
		for _, s := range dag.Subsumees[r] {
			fmt.Printf("    └── %-3s %s\n", names[dag.Tuples[s].Key()], dag.Tuples[s].Format(rel.Schema))
		}
	}

	// Multi-attribute inference (Section V) for t12 = ⟨30, MS, ?, ?⟩:
	// the Delta_t12 call-out of Fig. 1. With only 8 training points the
	// best-voter CPDs are nearly deterministic, so the all-averaged method
	// is used here to keep the toy estimate smooth.
	t12 := pick(12)
	j, err := repro.InferJoint(model, t12, repro.GibbsOptions{
		Samples: 5000, BurnIn: 200, Seed: 42, Method: repro.AllAveraged(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n== Delta for t12 %s ==\n", t12.Format(rel.Schema))
	inc, nw := rel.Schema.AttrIndex("inc"), rel.Schema.AttrIndex("nw")
	vals := make([]int, 2)
	for idx, p := range j.P {
		j.ValuesInto(idx, vals)
		fmt.Printf("  t12.%d  inc=%-5s nw=%-5s  prob %.2f\n", idx+1,
			rel.Schema.Attrs[inc].Domain[vals[0]],
			rel.Schema.Attrs[nw].Domain[vals[1]], p)
	}

	// The Section I-B walkthrough lists five meta-rules matching t1 on the
	// paper's full dataset; on this 8-point excerpt more bodies clear the
	// permissive support threshold, so additional meta-rules match too.
	matches := lattice.Match(t1, core.AllVoters)
	fmt.Printf("\nmeta-rules matching t1 for age: %d\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  %s\n", core.FormatMetaRule(rel.Schema, m))
	}
	return nil
}
