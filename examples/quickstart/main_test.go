package main

import "testing"

// TestRun executes the example end to end; it must complete without error.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in -short mode")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
