package repro

// Integration tests: the full pipeline — generate, learn, infer, derive,
// query — validated against the generating network's exact probabilities.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bn"
	"repro/internal/dist"
	"repro/internal/pdb"
	"repro/internal/relation"
)

// pipelineFixture samples an incomplete relation from a catalog network.
func pipelineFixture(t *testing.T, id string, trainN, dirtyN int, seed int64) (*bn.Instance, *Relation, *Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	top, err := bn.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, trainN)
	model, err := Learn(train, LearnOptions{SupportThreshold: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	rel := NewRelation(train.Schema)
	nAttrs := top.NumAttrs()
	for i := 0; i < dirtyN; i++ {
		tu := inst.Sample(rng)
		if rng.Float64() < 0.4 {
			k := 1 + rng.Intn(2)
			for _, a := range rng.Perm(nAttrs)[:k] {
				tu[a] = relation.Missing
			}
		}
		if err := rel.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	return inst, rel, model
}

// TestPipelineExpectedCountsTrackGroundTruth: expected counts on the
// derived database match Monte-Carlo ground truth within a few percent.
func TestPipelineExpectedCountsTrackGroundTruth(t *testing.T) {
	inst, rel, model := pipelineFixture(t, "BN9", 15000, 600, 101)
	db, err := Derive(model, rel, DeriveOptions{
		Method: BestAveraged(),
		Gibbs:  GibbsOptions{Samples: 800, BurnIn: 80, Seed: 7, Method: BestAveraged()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: decided cells are exact; open cells use the network's
	// conditional. Compare expected counts for every (attr=0) predicate.
	for attr := 0; attr < 3; attr++ {
		pred := pdb.Eq(attr, 0)
		got := db.ExpectedCount(pred)
		var want float64
		for _, tu := range rel.Tuples {
			switch tu[attr] {
			case 0:
				want++
			case relation.Missing:
				cond, err := inst.ConditionalSingle(tu, attr)
				if err != nil {
					t.Fatal(err)
				}
				want += cond[0]
			}
		}
		if math.Abs(got-want) > float64(rel.Len())*0.03 {
			t.Errorf("attr %d: expected count %v, ground truth %v", attr, got, want)
		}
	}
}

// TestPipelineBlockDistributionsAreCalibrated: across many derived blocks,
// the average probability assigned to the true (hidden) completion should
// exceed the uniform floor by a large margin.
func TestPipelineBlockDistributionsAreCalibrated(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	top, err := bn.ByID("BN8")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bn.Instantiate(top, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := inst.SampleRelation(rng, 15000)
	model, err := Learn(train, LearnOptions{SupportThreshold: 0.002})
	if err != nil {
		t.Fatal(err)
	}

	var probTrue, probUniform float64
	var n int
	for i := 0; i < 150; i++ {
		truth := inst.Sample(rng)
		broken := truth.Clone()
		k := 1 + rng.Intn(2)
		for _, a := range rng.Perm(4)[:k] {
			broken[a] = relation.Missing
		}
		j, err := InferJoint(model, broken, GibbsOptions{
			Samples: 600, BurnIn: 60, Seed: int64(i), Method: BestAveraged(),
		})
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]int, len(j.Attrs))
		for pos, a := range j.Attrs {
			vals[pos] = truth[a]
		}
		probTrue += j.P[j.Index(vals)]
		probUniform += 1 / float64(j.Size())
		n++
	}
	probTrue /= float64(n)
	probUniform /= float64(n)
	if probTrue < probUniform*1.5 {
		t.Errorf("avg P(truth) = %v, uniform floor %v — model uninformative", probTrue, probUniform)
	}
}

// TestPipelineSaveLoadInferIdentical: persisting and reloading a model
// changes nothing about its inferences.
func TestPipelineSaveLoadInferIdentical(t *testing.T) {
	_, rel, model := pipelineFixture(t, "BN8", 5000, 50, 104)
	buf := new(bytes.Buffer)
	if err := model.Save(buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range rel.Tuples {
		if tu.NumMissing() != 1 {
			continue
		}
		attr := tu.MissingAttrs()[0]
		a, err := InferSingle(model, tu, attr, BestAveraged())
		if err != nil {
			t.Fatal(err)
		}
		b, err := InferSingle(back, tu, attr, BestAveraged())
		if err != nil {
			t.Fatal(err)
		}
		l1, err := dist.L1(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if l1 > 1e-12 {
			t.Fatalf("inference changed after save/load: L1 = %v", l1)
		}
	}
}

// TestPipelineLazyAgreesWithEagerAtScale: the two query paths agree on a
// larger, noisier relation.
func TestPipelineLazyAgreesWithEagerAtScale(t *testing.T) {
	_, rel, model := pipelineFixture(t, "BN9", 10000, 400, 105)
	q := ConjQuery{{Attr: 0, Value: 0}, {Attr: 5, Value: 1}}
	lazyDB, err := NewLazyDB(model, rel, GibbsOptions{Samples: 800, BurnIn: 80, Seed: 9, Method: BestAveraged()})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := lazyDB.ExpectedCount(q)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Derive(model, rel, DeriveOptions{
		Method: BestAveraged(),
		Gibbs:  GibbsOptions{Samples: 800, BurnIn: 80, Seed: 9, Method: BestAveraged()},
	})
	if err != nil {
		t.Fatal(err)
	}
	ec := db.ExpectedCount(q.Predicate())
	if math.Abs(lc-ec) > 2.0 {
		t.Errorf("lazy %v vs eager %v", lc, ec)
	}
}
