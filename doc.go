// Package repro is a from-scratch Go reproduction of "Deriving
// Probabilistic Databases with Inference Ensembles" (Stoyanovich, Davidson,
// Milo, Tannen; ICDE 2011).
//
// Given a single relation with missing attribute values, the library learns
// a Meta-Rule Semi-Lattice (MRSL) ensemble from the complete tuples, infers
// a probability distribution over the missing values of every incomplete
// tuple — by ensemble voting for one missing attribute, by ordered Gibbs
// sampling for several — and assembles the results into a
// disjoint-independent probabilistic database that can be queried under
// possible-worlds semantics.
//
// The root package is a facade over the internal packages:
//
//	model, err := repro.Learn(rel, repro.LearnOptions{SupportThreshold: 0.01})
//	d, err := repro.InferSingle(model, tuple, attr, repro.BestAveraged())
//	j, err := repro.InferJoint(model, tuple, repro.GibbsOptions{Samples: 2000})
//	db, err := repro.Derive(model, rel, repro.DeriveOptions{})
//
// The cmd/ directory ships four tools (mrslbench regenerates every table
// and figure of the paper; mrsllearn, mrslinfer, and bngen operate on CSV
// data), and examples/ contains runnable walkthroughs, starting with the
// paper's own matchmaking relation in examples/quickstart.
package repro
