// Package repro is a from-scratch Go reproduction of "Deriving
// Probabilistic Databases with Inference Ensembles" (Stoyanovich, Davidson,
// Milo, Tannen; ICDE 2011).
//
// Given a single relation with missing attribute values, the library learns
// a Meta-Rule Semi-Lattice (MRSL) ensemble from the complete tuples, infers
// a probability distribution over the missing values of every incomplete
// tuple — by ensemble voting for one missing attribute, by ordered Gibbs
// sampling for several — and assembles the results into a
// disjoint-independent probabilistic database that can be queried under
// possible-worlds semantics.
//
// The root package is a facade over the internal packages:
//
//	model, err := repro.Learn(rel, repro.LearnOptions{SupportThreshold: 0.01})
//	d, err := repro.InferSingle(model, tuple, attr, repro.BestAveraged())
//	j, err := repro.InferJoint(model, tuple, repro.GibbsOptions{Samples: 2000})
//	db, err := repro.Derive(model, rel, repro.DeriveOptions{})
//
// Derivation runs on a concurrent, cache-backed streaming engine
// (internal/derive). Derive materializes the whole database; DeriveStream
// emits certain tuples and completed blocks in input order through a
// callback, so large derivations can be persisted or served without ever
// being held in memory:
//
//	err := repro.DeriveStream(model, rel, repro.DeriveOptions{
//		Method:      repro.BestAveraged(),
//		VoteWorkers: 8, // single-missing voting pool (0 = GOMAXPROCS)
//		Workers:     8, // multi-missing parallel Gibbs chains
//	}, func(it repro.DeriveItem) error {
//		return persist(it) // blocks arrive in input order
//	})
//
// For long-lived serving, construct the engine once and reuse it: an
// Engine accepts any number of overlapping derivation requests from any
// number of goroutines, and its evidence-keyed caches persist across
// them, so each distinct damage pattern is inferred once for the
// engine's lifetime. Streams can feed a callback or a pluggable Sink
// (NewCollector, NewCSVSink, NewJSONLSink, NewTextSink), and individual
// requests can be sharded differently via Pools:
//
//	eng, _ := repro.NewEngine(model, repro.DeriveOptions{Workers: 8})
//	err := eng.DeriveTo(rel, repro.NewJSONLSink(w, model.Schema))
//	stats := eng.Stats() // cache hit rates, points sampled, streams served
//
// Distinct incomplete tuples are inferred once — duplicates are served
// from the shared, synchronized memoization caches keyed by the tuple's
// evidence — and the emitted stream does not depend on pool sizes: any
// VoteWorkers value and any Workers count above 1 produce bit-identical
// databases, thanks to deterministic content-keyed per-tuple seeding
// with per-block scheduling. (Workers <= 1 selects the paper's tuple-DAG
// sampler instead of independent chains — a different estimator for
// multi-missing tuples.) Relations must carry the model's schema; a
// mismatch fails up front with *SchemaMismatchError, and
// ReadCSVInSchema parses serving-time inputs against a model schema
// without re-inferring domains.
//
// # Performance architecture
//
// Inference matches meta-rules lattice-natively: bodies are compiled into
// attribute bitmasks at model build time and matching traverses the
// subsumption Hasse diagram top-down, visiting exactly the matching
// rules instead of enumerating the 2^k sub-assignments of a tuple's
// evidence; the most specific voters are read off cover edges. The match
// path and all cache-hit paths are allocation-free in steady state.
//
// Caching is a three-level hierarchy, shared and bounded. Each engine
// owns one sharded local-CPD cache, shared by every Gibbs chain and by
// the single-missing vote path, plus two single-flight request caches
// (vote blocks and multi-missing joints) keyed by canonical evidence.
// DeriveOptions.CacheEntries caps all of them with CLOCK eviction for
// fixed-memory serving; EngineStats reports hits, misses, and evictions.
// Every cached value is a pure function of the model and its key, so
// sharing and eviction never change chain-mode results — the derived
// stream stays bit-identical for any worker count, cache bound, and
// request interleaving. (DAG-mode joints are the documented exception:
// that estimator is workload-dependent by construction.)
//
// # Querying
//
// The derived database exists to be queried, and queries rarely need all
// of it. The engine-native query subsystem (internal/query, surfaced as
// CompileQuery and Engine.Query) evaluates conjunctive predicates —
// equality and domain-order comparisons, several per attribute — under
// four operators: count (expected satisfying count, or the number of
// tuples reaching a probability threshold), exists (probability that at
// least one tuple satisfies, under block independence), topk (the most
// probable satisfying completions, ties bit-stable in input order), and
// groupby (the expected histogram of one attribute, optionally
// filtered):
//
//	q, _ := repro.CompileQuery(model.Schema, repro.QuerySpec{
//		Op: repro.QueryTopK, Where: "age=30,inc>=100K", K: 5,
//	})
//	res, _ := eng.Query(ctx, rel, q)
//
// Evaluation runs through a plan/executor pipeline and is extensional
// and exact with pruning: on a chains-mode engine (Workers > 1; the
// tuple-DAG sampler keeps its documented workload-dependence) every
// answer is bit-identical to deriving the full database through the
// same engine and evaluating the stream naively, yet selective queries
// infer only a fraction of the tuples.
//
// # Query planning & bounds
//
// The planner orders predicate evaluation by estimated selectivity
// (satisfying mass under each attribute's evidence-free voted marginal,
// memoized in the shared CPD cache) and classifies every tuple into a
// resolution tier of increasing cost — and, like the executor, honors
// context cancellation while doing so:
// refuted and certain tuples are decided by evidence for free;
// single-missing tuples are decided from the voted marginal CPD served
// by the engine's shared CPD cache — the same estimate full derivation
// would expand into a block, summed in block-alternative order so not
// even the last bit differs; multi-missing tuples receive a sound
// dissociation-style [lo, hi] interval from Engine.BoundCPD, built from
// per-attribute conditional-CPD envelopes (min/max satisfying mass over
// every local CPD the tuple's chain could draw from, memoized in the
// same sharded CLOCK-bounded CPD cache) combined with Frechet bounds
// and widened by an explicit concentration-plus-smoothing margin; and
// only tuples whose interval straddles the decision are derived. The
// executor consumes the tiers in cost order: a thresholded count counts
// a tuple in when lo clears MinProb and out when hi stays below; a
// thresholded exists folds the lo sides into a derivation-free lower
// bound that can cross the threshold without sampling anything (and
// still stops at the first certain witness); topk visits candidates in
// decreasing upper-bound order and stops once rank k is held at a
// probability no remaining bound can beat. One-sided decisions imply
// the oracle's comparison, so bit-identity survives — property-tested
// against the derive-everything oracle, including bound soundness
// itself, across worker counts and cache bounds. Expected counts,
// unthresholded exists, and groupby need exact masses and scan fully.
//
// QueryResult.Plan carries the compiled plan summary (mrslquery
// -explain prints it), and EngineStats reports the achieved pruning
// (QueryTuples, QueryPruned, QueryBounded, QueryDerived, BoundRefutes,
// BoundsComputed/BoundHits, and QueryBoundTightness over the real
// interval widths). cmd/mrslserve exposes the same evaluation over HTTP
// as POST /query (NDJSON: a query record, result records — streamed
// incrementally with partial/final markers for topk and groupby — and a
// summary with the plan and the pruning counters).
//
// # Adaptive execution
//
// The plan is a starting point, not a contract. The executor re-plans
// mid-query: topk resolves candidates in waves and, before each wave,
// cuts every remaining candidate whose upper bound can no longer beat
// the held rank k (cut candidates are never prefetched, so their
// chains never run); a thresholded exists whose lower-bound pass falls
// short folds the derivation-free upper bound into a collective refute
// that can answer no without deriving anything. The combined per-tuple
// envelope intervals bounded plans compute are content-keyed and
// shared across queries through the engine's CPD cache
// (EngineStats.EnvelopeHits/EnvelopeMisses), and a cost model
// calibrated from live vote/chain latencies and the engine's observed
// bound-decide rate skips envelope enumerations that cannot pay for
// themselves. All of it is scheduling only: answers are bit-identical
// to the static pipeline, which QuerySpec.Static preserves as the
// experiment control. Re-plan rounds and envelope-cache traffic
// surface on the plan's Adaptive block (QueryAdaptiveInfo), in
// mrslquery -explain, the /query summary, /stats, and /metrics.
//
// # Intensional SPJ queries
//
// Queries also run over joins of several relations. ParseSPJ parses a
// SQL-ish select-project-join statement ("select a,b from R join S on
// k=k where a=v"), SPJStatement.Bind attaches the named input
// relations, and CompileSPJ folds the join chain while tracking
// lineage — which base-tuple events each joined answer row reads. Join
// columns stay in the inputs' own schemas; the remaining attributes
// are recoded into the model's domains and the joined rows aligned to
// the model schema, so the same plan/executor/bounds pipeline
// evaluates the result:
//
//	st, _ := repro.ParseSPJ("from people join finance on pid=pid where age=20")
//	spec, _ := st.Bind(map[string]*repro.Relation{"people": p, "finance": f},
//		repro.QuerySpec{Op: repro.QueryCount}, false)
//	spj, _ := repro.CompileSPJ(model.Schema, spec)
//	res, _ := eng.QuerySPJ(ctx, spj)
//
// Compilation runs a safety analysis in the spirit of Gatterbauer &
// Suciu's dissociation: extensional evaluation over independent blocks
// is exact precisely when the plan is hierarchical — no
// relevantly-uncertain base tuple is read by two or more surviving
// joined rows. PlanInfo.Join carries the verdict (mrslquery -explain
// prints it). Safe plans answer bit-identically to a
// join-then-derive-everything oracle (property-tested). Unsafe plans
// still answer the linear operators (count, topk, groupby) exactly —
// expectations are linear in tuple probabilities — while exists and
// projected answers that merge shared lineage are flagged
// QueryResult.Dissociated and carry a sound [lo, hi] interval
// (QueryResult.Bounds) guaranteed to contain the true intensional
// mass, so thresholded decisions resolve without sampling whenever the
// interval clears. EngineStats.QueriesDissociated counts the flagged
// answers. The same surface is exposed on cmd/mrslquery (-sql, -rels)
// and on POST /query (sql= with multipart CSV file fields or
// registered join-input datasets; POST /datasets?schema=own registers
// a relation under its own schema for joining — such datasets accept
// no observations and cannot be derived or queried alone).
//
// Engine streams and queries accept a context (DeriveStreamContext,
// DeriveToContext, Query): cancellation stops scheduling and waiting
// immediately, while work already claimed is completed into the caches,
// never abandoned half-done — so a disconnected HTTP client cancels its
// in-flight derivation without poisoning anything shared.
//
// # Live evidence
//
// The database need not stay immutable per request. A relation
// registered as a Dataset accepts evidence deltas — "tuple 7's income
// is 50K" — as exact Bayesian conditioning: the tuple's block is
// filtered to the consistent alternatives and renormalized, and every
// later snapshot, derivation, or query over the dataset sees the
// posterior instead of the prior:
//
//	ds, _ := eng.RegisterDataset(rel)
//	res, _ := ds.Observe(ctx, 7, incAttr, fiftyK) // res.Collapsed, res.Epoch
//	snap, _ := ds.Snapshot(ctx)
//	ans, _ := eng.QuerySnapshot(ctx, snap, q, repro.Pools{}, nil)
//	err := eng.DeriveSnapshot(ctx, snap, repro.Pools{}, sink)
//
// Coherence is exact, not TTL-approximate. The engine's vote, joint,
// and CPD caches are keyed by tuple content — pure functions of the
// model that no observation can make stale — so they need no
// invalidation at all; the one per-dataset artifact, a tuple's
// conditioned posterior block, lives in a bounded engine cache tagged
// with the tuple's observation epoch. Observe invalidates exactly the
// superseded entry, a racing reader treats an epoch mismatch as a miss
// and recomputes deterministically (resolve the base block, replay the
// observation log), and eviction never changes answers. The query
// planner classifies conditioned tuples into an "observed" tier whose
// satisfying mass is exact and free. After any sequence of deltas,
// answers are bit-identical to a fresh engine evaluating the
// conditioned database naively — the property the live-evidence tests
// re-check after every delta, on chains, DAG, and always-evicting
// engines. Dataset.Subscribe delivers a coalesced signal per applied
// observation (the primitive behind mrslserve's watch queries), and
// EngineStats adds Observations, InvalidatedEntries, Watchers, and
// Datasets. Over HTTP: POST /datasets registers, POST /observe
// mutates, dataset=<id> selects the conditioned snapshot on /derive
// and /query, and watch=1 subscribes.
//
// # Operations & failure modes
//
// Serving fails soft. A deadline on the request context (or, over HTTP,
// mrslserve's -default-timeout / timeout_ms=) is a degradation budget,
// not a failure line: a query whose budget runs out answers the
// still-unresolved tuples from the planner's sound dissociation
// intervals instead of sampling them — QueryResult.Degraded is set, the
// [lo, hi] in QueryResult.Bounds is guaranteed to contain the exact
// answer, and the point answer is the bracket's lower side — while a
// derive stream ends with a truncated marker after only exact lines.
// Non-degraded answers stay bit-identical to the unbudgeted run.
// EngineStats counts Degraded and DeadlineMisses.
//
// Failures are isolated per request. A panic in any engine worker pool
// (voting, Gibbs chains, prefetch) is recovered at the goroutine
// boundary and returned as a typed *PanicError carrying the operation,
// panic value, and stack; the poisoned cache slot is invalidated rather
// than memoized, so the engine stays serviceable and the next identical
// request reproduces the fault-free answer bit for bit
// (EngineStats.PanicsRecovered). mrslserve adds HTTP-level recovery
// (500 before the first byte, a terminal error record mid-stream),
// admission control (-max-inflight: 429 + Retry-After), sustained-miss
// shedding with a half-open probe (-shed-after-misses: 503 until a
// probe request completes cleanly), and graceful drain on
// SIGTERM/SIGINT (healthz flips to draining, watch subscribers get a
// terminal end record, in-flight requests finish within
// -drain-timeout).
//
// internal/faultinject is the env-gated switchboard behind the chaos
// harness: MRSL_FAULTS='derive.vote=panic/3,gibbs.sweep=sleep:300us/7'
// arms named fault points in the hot paths with panics, sleeps, or
// cache eviction storms. "make chaos-smoke" (part of "make ci") soaks a
// live engine under concurrent derive/query/observe traffic with every
// point armed, under the race detector, asserting the process survives,
// non-degraded answers stay bit-identical to a fault-free oracle, and
// degraded intervals contain the oracle mass.
//
// # Observability
//
// The stack is instrumented end to end, and observation never changes
// answers. A process-wide registry (surfaced as WriteMetrics) holds
// lock-free fixed-bucket log-scale latency histograms on atomics — one
// atomic add per observation, zero allocations, pinned by benchmark —
// recording vote resolutions, Gibbs batches, bound computations,
// prefetch waits, stream and sink emission, watch fan-out, and query
// plan/exec times at block/stage granularity, never per tuple.
// WriteEngineStatsMetrics renders an EngineStats snapshot as one
// Prometheus gauge per counter (mrsl_engine_ + snake_case(field);
// EngineStatsMetricNames lists them, and "make metrics-lint" keeps the
// exposition and README's metric table in lockstep).
//
// Per-request timing is opt-in: QuerySpec.Analyze (mrslquery
// -explain-analyze, or explain=analyze on POST /query) attaches
// measured planning, wall, and per-tier resolution durations to
// QueryResult.Plan.Timing — the predicted tier counts next to what they
// actually cost. A Trace attached to the evaluation context (NewTrace,
// WithTrace) records named spans through the same probes and also
// enables the timing block; a nil *Trace is a valid no-op recorder, so
// instrumented code observes unconditionally and pays only a nil check
// when tracing is off. Neither path changes answers — evaluations with
// timing or tracing enabled return bit-identical results
// (property-tested). mrslserve exposes the registry on GET /metrics
// (plus build identity via BuildRevision), honors or generates
// X-Request-ID, logs one structured slog line per request, streams
// {"kind":"trace"} records under trace=1, and mounts net/http/pprof on
// a separate listener with -pprof.
//
// The cmd/ directory ships six tools (mrslserve serves streaming
// derivations and queries over HTTP from one long-lived engine;
// mrslbench regenerates every table and figure of the paper plus engine
// ablations; mrslquery answers count/exists/topk/groupby queries over
// incomplete CSV data through the engine's pruning evaluator; mrsllearn,
// mrslinfer, and bngen operate on CSV data), and examples/ contains
// runnable walkthroughs, starting with the paper's own matchmaking
// relation in examples/quickstart.
package repro
